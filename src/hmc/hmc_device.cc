#include "hmc/hmc_device.h"

#include "common/log.h"
#include "common/rng.h"
#include "common/units.h"
#include "noc/topology.h"

namespace hmcsim {

SerdesLink::Params
linkParamsFrom(const HmcConfig &cfg, std::uint64_t seed_offset)
{
    SerdesLink::Params lp;
    lp.lanes = cfg.lanesPerLink;
    lp.gbps = cfg.linkGbps;
    lp.wireLatency = cfg.linkWireLatency;
    lp.serdesLatency = cfg.serdesLatency;
    lp.tokens = cfg.linkTokens;
    lp.tokenReturnLatency = cfg.tokenReturnLatency;
    lp.crcErrorProb = cfg.crcErrorProb;
    lp.retryDelay = cfg.retryDelay;
    lp.seed = cfg.linkSeed + seed_offset;
    return lp;
}

HmcDevice::HmcDevice(Kernel &kernel, Component *parent, std::string name,
                     const HmcConfig &cfg, CubeId cube_id)
    : Component(kernel, parent, std::move(name)), cfg_(cfg),
      cubeId_(cube_id), map_(cfg_)
{
    cfg_.validate();
    if (cubeId_ >= cfg_.chain.numCubes)
        panic("HmcDevice: cube id beyond hmc.num_cubes");

    const TopologySpec topo = makeTopology(
        cfg_.topology, cfg_.numVaults, cfg_.numQuadrants, cfg_.numLinks);
    net_ = std::make_unique<Network>(kernel, this, "noc", topo, cfg_.noc);

    // Decorrelate CRC error streams across chained cubes (cube 0 keeps
    // the single-cube seed).
    const SerdesLink::Params lp = linkParamsFrom(
        cfg_, static_cast<std::uint64_t>(cubeId_) * 7919);

    for (LinkId l = 0; l < cfg_.numLinks; ++l) {
        links_.push_back(std::make_unique<SerdesLink>(
            kernel, this, "link" + std::to_string(l), l, lp));
    }

    VaultController::Params vp;
    vp.inputQueueFlits = cfg_.vcInputQueueFlits;
    vp.bankQueueDepth = cfg_.vcBankQueueDepth;
    vp.responseQueueFlits = cfg_.vcResponseQueueFlits;
    vp.frontendLatency = cfg_.vcFrontendLatency;
    vp.backendLatency = cfg_.vcBackendLatency;
    vp.requestCycle = cfg_.vcRequestCycle;
    vp.scheduler = schedulerFromString(cfg_.scheduler);
    vp.pagePolicy = pagePolicyFromString(cfg_.pagePolicy);
    vp.trefi = cfg_.trefi;

    const DramTimingParams timing = cfg_.dramTiming();

    for (VaultId v = 0; v < cfg_.numVaults; ++v) {
        // Per-vault systematic variation factor f_v in [0, 1); chained
        // cubes draw from disjoint seed ranges (cube 0 unchanged).
        std::uint64_t s = cfg_.vaultJitterSeed + v +
            static_cast<std::uint64_t>(cubeId_) * 1000003;
        const double f = static_cast<double>(splitmix64(s) >> 11) *
            0x1.0p-53;
        VaultController::Params vpv = vp;
        vpv.jitterPerFlit =
            nsToTicks(f * cfg_.vaultJitterNsPerFlit);
        vaults_.push_back(std::make_unique<VaultController>(
            kernel, this, "vault" + std::to_string(v), v,
            vaultEndpoint(v), *net_, map_, timing, cfg_.numBanksPerVault,
            vpv));
    }

    // Wire vault controllers as NoC endpoints.
    for (VaultId v = 0; v < cfg_.numVaults; ++v) {
        VaultController *vc = vaults_[v].get();
        Network::EndpointOps ops;
        ops.tryReserve = [vc](std::uint32_t flits) {
            return vc->tryReserveInput(flits);
        };
        ops.deliver = [vc](const NocMessage &msg) {
            vc->deliverRequest(msg);
        };
        ops.onInjectSpace = [vc] { vc->onInjectSpace(); };
        net_->setEndpoint(vaultEndpoint(v), std::move(ops));
    }

    // Wire link masters: requests drain from the link RX buffer into
    // the NoC; responses eject from the NoC into the link's upstream
    // transmitter (token-reserved at switch allocation).
    for (LinkId l = 0; l < cfg_.numLinks; ++l) {
        SerdesLink *lk = links_[l].get();
        const NodeId ep = linkEndpoint(l);

        Network::EndpointOps ops;
        ops.tryReserve = [lk](std::uint32_t flits) {
            if (!lk->canSend(LinkDir::CubeToHost, flits))
                return false;
            lk->reserveTokens(LinkDir::CubeToHost, flits);
            return true;
        };
        ops.deliver = [lk](const NocMessage &msg) {
            auto pkt = std::static_pointer_cast<HmcPacket>(msg.payload);
            lk->send(LinkDir::CubeToHost, pkt);
        };
        ops.onInjectSpace = [this, l] {
            drainLinkRx(l);
            if (injectSpaceHook_)
                injectSpaceHook_(l);
        };
        net_->setEndpoint(ep, std::move(ops));

        lk->setOnRxAvailable(LinkDir::HostToCube,
                             [this, l] { drainLinkRx(l); });
        lk->setOnTokensFree(LinkDir::CubeToHost, [this, ep] {
            net_->kickEject(ep);
        });
    }

    // Power/thermal model: every instrumented component reports into
    // it, and its governor feeds timing stretch back into the vaults
    // and links.  Periodic stepping is started by System so that
    // device-only tests keep a drainable event queue.
    if (cfg_.power.enabled) {
        power_ = std::make_unique<PowerModel>(kernel, this, "power",
                                              cfg_.power);
        net_->setPowerProbe(power_.get());
        for (auto &lk : links_)
            lk->setPowerProbe(power_.get());
        for (auto &vc : vaults_)
            vc->setPowerProbe(power_.get(),
                              cfg_.power.thermal.numDramLayers);
        power_->setThrottleApplier(
            [this](double s) { applyThrottle(s); });
    }
}

void
HmcDevice::setInjectSpaceHook(InlineFunction<void(LinkId)> fn)
{
    injectSpaceHook_ = std::move(fn);
}

void
HmcDevice::applyThrottle(double slowdown)
{
    for (auto &vc : vaults_)
        vc->setThrottle(slowdown);
    for (auto &lk : links_)
        lk->setThrottle(slowdown);
}

SerdesLink &
HmcDevice::link(LinkId l)
{
    if (l >= links_.size())
        panic("HmcDevice::link: link out of range");
    return *links_[l];
}

VaultController &
HmcDevice::vaultController(VaultId v)
{
    if (v >= vaults_.size())
        panic("HmcDevice::vaultController: vault out of range");
    return *vaults_[v];
}

void
HmcDevice::injectLocal(LinkId arrival_link, const HmcPacketPtr &pkt)
{
    const NodeId ep = linkEndpoint(arrival_link);
    pkt->vault = map_.decode(pkt->addr).vault;
    pkt->link = arrival_link;
    NocMessage msg;
    msg.id = pkt->id;
    msg.src = ep;
    msg.dst = vaultEndpoint(pkt->vault);
    msg.flits = pkt->flits();
    msg.payload = pkt;
    net_->inject(ep, std::move(msg));
}

bool
HmcDevice::canInjectLocal(LinkId arrival_link, std::uint32_t flits) const
{
    return net_->canInject(linkEndpoint(arrival_link), flits);
}

bool
HmcDevice::tryInjectLocal(LinkId arrival_link, const HmcPacketPtr &pkt)
{
    if (!canInjectLocal(arrival_link, pkt->flits()))
        return false;  // onInjectSpace re-enters
    injectLocal(arrival_link, pkt);
    return true;
}

void
HmcDevice::drainLinkRx(LinkId l)
{
    SerdesLink &lk = *links_[l];
    while (lk.rxAvailable(LinkDir::HostToCube)) {
        const HmcPacketPtr &head = lk.rxPeek(LinkDir::HostToCube);
        // Pass-through: anything not addressed to this cube (another
        // cube's request, or a response transiting a ring) goes to the
        // chain switch.  A full switch leaves the packet in the RX
        // buffer -- head-of-line backpressure holds the link tokens,
        // which is what makes the hop-by-hop credits end-to-end.
        if (head->isResponse() || head->cube != cubeId_) {
            if (!forwarder_)
                panic("HmcDevice: packet for cube " +
                      std::to_string(head->cube) +
                      " arrived at cube " + std::to_string(cubeId_) +
                      " with no chain forwarder wired");
            if (!forwarder_(l, head))
                return;  // switch kicks us when space frees
            lk.rxPop(LinkDir::HostToCube);
            continue;
        }
        // Pop before injecting: the RX token-refund event must be
        // scheduled ahead of the injection's events, as it always was.
        if (!net_->canInject(linkEndpoint(l), head->flits()))
            return;  // onInjectSpace re-enters
        HmcPacketPtr pkt = lk.rxPop(LinkDir::HostToCube);
        injectLocal(l, pkt);
    }
}

std::uint64_t
HmcDevice::totalRequestsServed() const
{
    std::uint64_t total = 0;
    for (const auto &v : vaults_)
        total += v->requestsServed();
    return total;
}

}  // namespace hmcsim
