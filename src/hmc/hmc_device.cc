#include "hmc/hmc_device.h"

#include "common/log.h"
#include "common/rng.h"
#include "common/units.h"
#include "noc/topology.h"

namespace hmcsim {

HmcDevice::HmcDevice(Kernel &kernel, Component *parent, std::string name,
                     const HmcConfig &cfg)
    : Component(kernel, parent, std::move(name)), cfg_(cfg), map_(cfg_)
{
    cfg_.validate();

    const TopologySpec topo = makeTopology(
        cfg_.topology, cfg_.numVaults, cfg_.numQuadrants, cfg_.numLinks);
    net_ = std::make_unique<Network>(kernel, this, "noc", topo, cfg_.noc);

    SerdesLink::Params lp;
    lp.lanes = cfg_.lanesPerLink;
    lp.gbps = cfg_.linkGbps;
    lp.wireLatency = cfg_.linkWireLatency;
    lp.serdesLatency = cfg_.serdesLatency;
    lp.tokens = cfg_.linkTokens;
    lp.tokenReturnLatency = cfg_.tokenReturnLatency;
    lp.crcErrorProb = cfg_.crcErrorProb;
    lp.retryDelay = cfg_.retryDelay;
    lp.seed = cfg_.linkSeed;

    for (LinkId l = 0; l < cfg_.numLinks; ++l) {
        links_.push_back(std::make_unique<SerdesLink>(
            kernel, this, "link" + std::to_string(l), l, lp));
    }

    VaultController::Params vp;
    vp.inputQueueFlits = cfg_.vcInputQueueFlits;
    vp.bankQueueDepth = cfg_.vcBankQueueDepth;
    vp.responseQueueFlits = cfg_.vcResponseQueueFlits;
    vp.frontendLatency = cfg_.vcFrontendLatency;
    vp.backendLatency = cfg_.vcBackendLatency;
    vp.requestCycle = cfg_.vcRequestCycle;
    vp.scheduler = schedulerFromString(cfg_.scheduler);
    vp.pagePolicy = pagePolicyFromString(cfg_.pagePolicy);
    vp.trefi = cfg_.trefi;

    const DramTimingParams timing = cfg_.dramTiming();

    for (VaultId v = 0; v < cfg_.numVaults; ++v) {
        // Per-vault systematic variation factor f_v in [0, 1).
        std::uint64_t s = cfg_.vaultJitterSeed + v;
        const double f = static_cast<double>(splitmix64(s) >> 11) *
            0x1.0p-53;
        VaultController::Params vpv = vp;
        vpv.jitterPerFlit =
            nsToTicks(f * cfg_.vaultJitterNsPerFlit);
        vaults_.push_back(std::make_unique<VaultController>(
            kernel, this, "vault" + std::to_string(v), v,
            vaultEndpoint(v), *net_, map_, timing, cfg_.numBanksPerVault,
            vpv));
    }

    // Wire vault controllers as NoC endpoints.
    for (VaultId v = 0; v < cfg_.numVaults; ++v) {
        VaultController *vc = vaults_[v].get();
        Network::EndpointOps ops;
        ops.tryReserve = [vc](std::uint32_t flits) {
            return vc->tryReserveInput(flits);
        };
        ops.deliver = [vc](const NocMessage &msg) {
            vc->deliverRequest(msg);
        };
        ops.onInjectSpace = [vc] { vc->onInjectSpace(); };
        net_->setEndpoint(vaultEndpoint(v), std::move(ops));
    }

    // Wire link masters: requests drain from the link RX buffer into
    // the NoC; responses eject from the NoC into the link's upstream
    // transmitter (token-reserved at switch allocation).
    for (LinkId l = 0; l < cfg_.numLinks; ++l) {
        SerdesLink *lk = links_[l].get();
        const NodeId ep = linkEndpoint(l);

        Network::EndpointOps ops;
        ops.tryReserve = [lk](std::uint32_t flits) {
            if (!lk->canSend(LinkDir::CubeToHost, flits))
                return false;
            lk->reserveTokens(LinkDir::CubeToHost, flits);
            return true;
        };
        ops.deliver = [lk](const NocMessage &msg) {
            auto pkt = std::static_pointer_cast<HmcPacket>(msg.payload);
            lk->send(LinkDir::CubeToHost, pkt);
        };
        ops.onInjectSpace = [this, l] { drainLinkRx(l); };
        net_->setEndpoint(ep, std::move(ops));

        lk->setOnRxAvailable(LinkDir::HostToCube,
                             [this, l] { drainLinkRx(l); });
        lk->setOnTokensFree(LinkDir::CubeToHost, [this, ep] {
            net_->kickEject(ep);
        });
    }

    // Power/thermal model: every instrumented component reports into
    // it, and its governor feeds timing stretch back into the vaults
    // and links.  Periodic stepping is started by System so that
    // device-only tests keep a drainable event queue.
    if (cfg_.power.enabled) {
        power_ = std::make_unique<PowerModel>(kernel, this, "power",
                                              cfg_.power);
        net_->setPowerProbe(power_.get());
        for (auto &lk : links_)
            lk->setPowerProbe(power_.get());
        for (auto &vc : vaults_)
            vc->setPowerProbe(power_.get());
        power_->setThrottleApplier(
            [this](double s) { applyThrottle(s); });
    }
}

void
HmcDevice::applyThrottle(double slowdown)
{
    for (auto &vc : vaults_)
        vc->setThrottle(slowdown);
    for (auto &lk : links_)
        lk->setThrottle(slowdown);
}

SerdesLink &
HmcDevice::link(LinkId l)
{
    if (l >= links_.size())
        panic("HmcDevice::link: link out of range");
    return *links_[l];
}

VaultController &
HmcDevice::vaultController(VaultId v)
{
    if (v >= vaults_.size())
        panic("HmcDevice::vaultController: vault out of range");
    return *vaults_[v];
}

void
HmcDevice::drainLinkRx(LinkId l)
{
    SerdesLink &lk = *links_[l];
    const NodeId ep = linkEndpoint(l);
    while (lk.rxAvailable(LinkDir::HostToCube)) {
        const HmcPacketPtr &head = lk.rxPeek(LinkDir::HostToCube);
        const std::uint32_t flits = head->flits();
        if (!net_->canInject(ep, flits))
            return;  // onInjectSpace re-enters
        HmcPacketPtr pkt = lk.rxPop(LinkDir::HostToCube);
        pkt->vault = map_.decode(pkt->addr).vault;
        pkt->link = l;
        NocMessage msg;
        msg.id = pkt->id;
        msg.src = ep;
        msg.dst = vaultEndpoint(pkt->vault);
        msg.flits = flits;
        msg.payload = pkt;
        net_->inject(ep, std::move(msg));
    }
}

std::uint64_t
HmcDevice::totalRequestsServed() const
{
    std::uint64_t total = 0;
    for (const auto &v : vaults_)
        total += v->requestsServed();
    return total;
}

}  // namespace hmcsim
