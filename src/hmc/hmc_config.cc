#include "hmc/hmc_config.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace hmcsim {

SchedulerKind
schedulerFromString(const std::string &s)
{
    if (s == "fifo")
        return SchedulerKind::Fifo;
    if (s == "frfcfs")
        return SchedulerKind::FrFcfs;
    fatal("unknown scheduler '" + s + "' (expected fifo|frfcfs)");
}

std::string
toString(SchedulerKind k)
{
    return k == SchedulerKind::Fifo ? "fifo" : "frfcfs";
}

ChainTopology
chainTopologyFromString(const std::string &s)
{
    if (s == "daisy")
        return ChainTopology::Daisy;
    if (s == "ring")
        return ChainTopology::Ring;
    if (s == "star")
        return ChainTopology::Star;
    fatal("unknown chain topology '" + s + "' (expected daisy|ring|star)");
}

std::string
toString(ChainTopology t)
{
    switch (t) {
      case ChainTopology::Daisy: return "daisy";
      case ChainTopology::Ring: return "ring";
      case ChainTopology::Star: return "star";
    }
    return "?";
}

PagePolicy
pagePolicyFromString(const std::string &s)
{
    if (s == "closed")
        return PagePolicy::Closed;
    if (s == "open")
        return PagePolicy::Open;
    fatal("unknown page policy '" + s + "' (expected closed|open)");
}

std::string
toString(PagePolicy p)
{
    return p == PagePolicy::Closed ? "closed" : "open";
}

double
HmcConfig::peakBandwidthGBs()const
{
    // Eq. 1: links * lanes * Gbps * 2 (duplex) / 8 bits.
    return numLinks * lanesPerLink * linkGbps * 2.0 / 8.0;
}

double
HmcConfig::linkBandwidthGBsPerDirection() const
{
    return numLinks * lanesPerLink * linkGbps / 8.0;
}

std::uint32_t
HmcConfig::vaultsPerQuadrant() const
{
    return numVaults / numQuadrants;
}

DramTimingParams
HmcConfig::dramTiming() const
{
    DramTimingParams p = DramTimingParams::preset(dramPreset);
    p.tREFI = trefi;
    return p;
}

void
HmcConfig::validate() const
{
    if (!isPow2(numVaults) || !isPow2(numBanksPerVault))
        fatal("hmc: vault and bank counts must be powers of two");
    if (numQuadrants == 0 || numVaults % numQuadrants != 0)
        fatal("hmc: vaults must divide evenly into quadrants");
    if (!isPow2(blockBytes) || blockBytes < 16 || blockBytes > 256)
        fatal("hmc: block size must be a power of two in [16, 256]");
    if (!isPow2(rowBytes) || rowBytes < blockBytes)
        fatal("hmc: row size must be a power of two >= block size");
    if (!isPow2(capacityBytes))
        fatal("hmc: capacity must be a power of two");
    if (capacityBytes % (static_cast<std::uint64_t>(numVaults) *
                         numBanksPerVault) != 0)
        fatal("hmc: capacity must divide evenly across banks");
    if (numLinks == 0 || numLinks > numQuadrants)
        fatal("hmc: need 1..num_quadrants links");
    if (linkGbps <= 0.0 || lanesPerLink == 0)
        fatal("hmc: invalid link rate");
    if (linkTokens < 16)
        fatal("hmc: link token pool must hold at least one max packet "
              "(16 flits)");
    if (crcErrorProb < 0.0 || crcErrorProb >= 1.0)
        fatal("hmc: crc error probability must be in [0, 1)");
    if (vaultJitterNsPerFlit < 0.0)
        fatal("hmc: vault jitter must be non-negative");
    if (mapScheme != "vault_then_bank" && mapScheme != "bank_then_vault")
        fatal("hmc: unknown map scheme '" + mapScheme + "'");
    if (!isPow2(chain.numCubes) || chain.numCubes > 8)
        fatal("hmc: num_cubes must be a power of two in [1, 8] "
              "(3-bit CUB field)");
    const ChainTopology topo = chainTopologyFromString(chain.topology);
    if (chain.interleave != "cube_high" && chain.interleave != "cube_low")
        fatal("hmc: unknown chain interleave '" + chain.interleave +
              "' (expected cube_high|cube_low)");
    if (topo == ChainTopology::Star && chain.numCubes > numLinks)
        fatal("hmc: star chaining needs num_cubes <= num_links "
              "(every cube is host-attached)");
    if (chain.forwardQueuePackets == 0)
        fatal("hmc: chain forward queue must hold at least one packet");
    if (chain.routing != "static" && chain.routing != "adaptive")
        fatal("hmc: unknown chain routing '" + chain.routing +
              "' (expected static|adaptive)");
    if (chain.adaptiveMaxMisroutes > 8)
        fatal("hmc: chain adaptive misroute budget must be <= 8 "
              "(bounded detours keep ring routing loop-free)");
    schedulerFromString(scheduler);
    pagePolicyFromString(pagePolicy);
    (void)dramTiming();  // validates the preset name
    power.validate();
}

HmcConfig
HmcConfig::fromConfig(const Config &cfg)
{
    HmcConfig c;
    c.numVaults =
        static_cast<std::uint32_t>(cfg.getU64("hmc.num_vaults", c.numVaults));
    c.numQuadrants = static_cast<std::uint32_t>(
        cfg.getU64("hmc.num_quadrants", c.numQuadrants));
    c.numBanksPerVault = static_cast<std::uint32_t>(
        cfg.getU64("hmc.banks_per_vault", c.numBanksPerVault));
    c.capacityBytes = cfg.getU64("hmc.capacity_bytes", c.capacityBytes);
    c.blockBytes =
        static_cast<std::uint32_t>(cfg.getU64("hmc.block_bytes",
                                              c.blockBytes));
    c.rowBytes =
        static_cast<std::uint32_t>(cfg.getU64("hmc.row_bytes", c.rowBytes));
    c.mapScheme = cfg.getString("hmc.map_scheme", c.mapScheme);

    c.numLinks =
        static_cast<std::uint32_t>(cfg.getU64("hmc.num_links", c.numLinks));
    c.lanesPerLink = static_cast<std::uint32_t>(
        cfg.getU64("hmc.lanes_per_link", c.lanesPerLink));
    c.linkGbps = cfg.getDouble("hmc.link_gbps", c.linkGbps);
    c.linkWireLatency = cfg.getU64("hmc.link_wire_latency_ps",
                                   c.linkWireLatency);
    c.serdesLatency = cfg.getU64("hmc.serdes_latency_ps", c.serdesLatency);
    c.linkTokens = static_cast<std::uint32_t>(
        cfg.getU64("hmc.link_tokens", c.linkTokens));
    c.tokenReturnLatency = cfg.getU64("hmc.token_return_latency_ps",
                                      c.tokenReturnLatency);
    c.crcErrorProb = cfg.getDouble("hmc.crc_error_prob", c.crcErrorProb);
    c.retryDelay = cfg.getU64("hmc.retry_delay_ps", c.retryDelay);
    c.linkSeed = cfg.getU64("hmc.link_seed", c.linkSeed);

    c.topology = cfg.getString("hmc.topology", c.topology);
    c.noc.flitPeriod = cfg.getU64("hmc.noc_flit_period_ps",
                                  c.noc.flitPeriod);
    c.noc.wireLatency = cfg.getU64("hmc.noc_wire_latency_ps",
                                   c.noc.wireLatency);
    c.noc.routerLatency = cfg.getU64("hmc.noc_router_latency_ps",
                                     c.noc.routerLatency);
    c.noc.creditLatency = cfg.getU64("hmc.noc_credit_latency_ps",
                                     c.noc.creditLatency);
    c.noc.inputBufferFlits = static_cast<std::uint32_t>(
        cfg.getU64("hmc.noc_input_buffer_flits", c.noc.inputBufferFlits));
    c.noc.outputQueueFlits = static_cast<std::uint32_t>(
        cfg.getU64("hmc.noc_output_queue_flits", c.noc.outputQueueFlits));
    c.noc.ejectQueueFlits = static_cast<std::uint32_t>(
        cfg.getU64("hmc.noc_eject_queue_flits", c.noc.ejectQueueFlits));

    c.vcInputQueueFlits = static_cast<std::uint32_t>(
        cfg.getU64("hmc.vc_input_queue_flits", c.vcInputQueueFlits));
    c.vcBankQueueDepth = static_cast<std::uint32_t>(
        cfg.getU64("hmc.vc_bank_queue_depth", c.vcBankQueueDepth));
    c.vcResponseQueueFlits = static_cast<std::uint32_t>(
        cfg.getU64("hmc.vc_response_queue_flits", c.vcResponseQueueFlits));
    c.vcFrontendLatency = cfg.getU64("hmc.vc_frontend_latency_ps",
                                     c.vcFrontendLatency);
    c.vcBackendLatency = cfg.getU64("hmc.vc_backend_latency_ps",
                                    c.vcBackendLatency);
    c.vcRequestCycle = cfg.getU64("hmc.vc_request_cycle_ps",
                                  c.vcRequestCycle);
    c.scheduler = cfg.getString("hmc.scheduler", c.scheduler);
    c.pagePolicy = cfg.getString("hmc.page_policy", c.pagePolicy);
    c.trefi = cfg.getU64("hmc.trefi_ps", c.trefi);
    c.vaultJitterNsPerFlit = cfg.getDouble("hmc.vault_jitter_ns_per_flit",
                                           c.vaultJitterNsPerFlit);
    c.vaultJitterSeed = cfg.getU64("hmc.vault_jitter_seed",
                                   c.vaultJitterSeed);

    c.dramPreset = cfg.getString("hmc.dram_preset", c.dramPreset);

    c.chain.numCubes = static_cast<std::uint32_t>(
        cfg.getU64("hmc.num_cubes", c.chain.numCubes));
    c.chain.topology = cfg.getString("hmc.chain_topology",
                                     c.chain.topology);
    c.chain.interleave = cfg.getString("hmc.chain_interleave",
                                       c.chain.interleave);
    c.chain.passThroughLatency = cfg.getU64(
        "hmc.chain_passthrough_latency_ps", c.chain.passThroughLatency);
    c.chain.forwardQueuePackets = static_cast<std::uint32_t>(
        cfg.getU64("hmc.chain_forward_queue_packets",
                   c.chain.forwardQueuePackets));
    c.chain.routing = cfg.getString("hmc.chain_routing", c.chain.routing);
    c.chain.adaptiveThresholdFlits = static_cast<std::uint32_t>(
        cfg.getU64("hmc.chain_adaptive_threshold_flits",
                   c.chain.adaptiveThresholdFlits));
    c.chain.adaptiveMisrouteThresholdFlits = static_cast<std::uint32_t>(
        cfg.getU64("hmc.chain_adaptive_misroute_threshold_flits",
                   c.chain.adaptiveMisrouteThresholdFlits));
    c.chain.adaptiveMaxMisroutes = static_cast<std::uint32_t>(
        cfg.getU64("hmc.chain_adaptive_max_misroutes",
                   c.chain.adaptiveMaxMisroutes));

    c.power = PowerConfig::fromConfig(cfg);
    c.validate();
    return c;
}

void
HmcConfig::toConfig(Config &cfg) const
{
    cfg.setU64("hmc.num_vaults", numVaults);
    cfg.setU64("hmc.num_quadrants", numQuadrants);
    cfg.setU64("hmc.banks_per_vault", numBanksPerVault);
    cfg.setU64("hmc.capacity_bytes", capacityBytes);
    cfg.setU64("hmc.block_bytes", blockBytes);
    cfg.setU64("hmc.row_bytes", rowBytes);
    cfg.set("hmc.map_scheme", mapScheme);
    cfg.setU64("hmc.num_links", numLinks);
    cfg.setU64("hmc.lanes_per_link", lanesPerLink);
    cfg.setDouble("hmc.link_gbps", linkGbps);
    cfg.setU64("hmc.link_wire_latency_ps", linkWireLatency);
    cfg.setU64("hmc.serdes_latency_ps", serdesLatency);
    cfg.setU64("hmc.link_tokens", linkTokens);
    cfg.setU64("hmc.token_return_latency_ps", tokenReturnLatency);
    cfg.setDouble("hmc.crc_error_prob", crcErrorProb);
    cfg.setU64("hmc.retry_delay_ps", retryDelay);
    cfg.setU64("hmc.link_seed", linkSeed);
    cfg.set("hmc.topology", topology);
    cfg.setU64("hmc.noc_flit_period_ps", noc.flitPeriod);
    cfg.setU64("hmc.noc_wire_latency_ps", noc.wireLatency);
    cfg.setU64("hmc.noc_router_latency_ps", noc.routerLatency);
    cfg.setU64("hmc.noc_credit_latency_ps", noc.creditLatency);
    cfg.setU64("hmc.noc_input_buffer_flits", noc.inputBufferFlits);
    cfg.setU64("hmc.noc_output_queue_flits", noc.outputQueueFlits);
    cfg.setU64("hmc.noc_eject_queue_flits", noc.ejectQueueFlits);
    cfg.setU64("hmc.vc_input_queue_flits", vcInputQueueFlits);
    cfg.setU64("hmc.vc_bank_queue_depth", vcBankQueueDepth);
    cfg.setU64("hmc.vc_response_queue_flits", vcResponseQueueFlits);
    cfg.setU64("hmc.vc_frontend_latency_ps", vcFrontendLatency);
    cfg.setU64("hmc.vc_backend_latency_ps", vcBackendLatency);
    cfg.setU64("hmc.vc_request_cycle_ps", vcRequestCycle);
    cfg.set("hmc.scheduler", scheduler);
    cfg.set("hmc.page_policy", pagePolicy);
    cfg.setU64("hmc.trefi_ps", trefi);
    cfg.setDouble("hmc.vault_jitter_ns_per_flit", vaultJitterNsPerFlit);
    cfg.setU64("hmc.vault_jitter_seed", vaultJitterSeed);
    cfg.set("hmc.dram_preset", dramPreset);
    cfg.setU64("hmc.num_cubes", chain.numCubes);
    cfg.set("hmc.chain_topology", chain.topology);
    cfg.set("hmc.chain_interleave", chain.interleave);
    cfg.setU64("hmc.chain_passthrough_latency_ps",
               chain.passThroughLatency);
    cfg.setU64("hmc.chain_forward_queue_packets", chain.forwardQueuePackets);
    cfg.set("hmc.chain_routing", chain.routing);
    cfg.setU64("hmc.chain_adaptive_threshold_flits",
               chain.adaptiveThresholdFlits);
    cfg.setU64("hmc.chain_adaptive_misroute_threshold_flits",
               chain.adaptiveMisrouteThresholdFlits);
    cfg.setU64("hmc.chain_adaptive_max_misroutes",
               chain.adaptiveMaxMisroutes);
    power.toConfig(cfg);
}

}  // namespace hmcsim
