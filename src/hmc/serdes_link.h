/**
 * @file
 * External full-duplex SerDes link between the host (FPGA) and the
 * cube.  Each direction serializes packets at lanes*Gbps, applies a
 * PHY/SerDes pipeline latency, enforces token-based flow control
 * against the remote RX buffer, and can inject CRC failures that are
 * healed by link-layer retry (at a bandwidth and latency cost).
 */

#ifndef HMCSIM_HMC_SERDES_LINK_H_
#define HMCSIM_HMC_SERDES_LINK_H_

#include <deque>

#include "common/inline_function.h"
#include "common/rng.h"
#include "common/stats.h"
#include "hmc/flow_control.h"
#include "hmc/packet.h"
#include "noc/channel.h"
#include "obs/metrics.h"
#include "power/power_probe.h"
#include "sim/component.h"

namespace hmcsim {

class PacketTracer;
class Partition;
class SelfProfiler;

/** Traffic direction over one link. */
enum class LinkDir : unsigned {
    /** Requests: host -> cube. */
    HostToCube = 0,
    /** Responses: cube -> host. */
    CubeToHost = 1,
};

/**
 * What sits at the upstream end of this link: the host controller, or
 * another cube's pass-through switch (multi-cube chaining).  Purely a
 * wiring annotation; the serialization/flow-control model is the same
 * in both modes.
 */
enum class LinkEndpointMode : unsigned {
    Host = 0,
    PassThrough = 1,
};

class SerdesLink : public Component
{
  public:
    struct Params {
        std::uint32_t lanes = 8;
        double gbps = 15.0;
        Tick wireLatency = 1600;
        Tick serdesLatency = 12800;
        std::uint32_t tokens = 128;
        Tick tokenReturnLatency = 3200;
        double crcErrorProb = 0.0;
        Tick retryDelay = 100000;
        std::uint64_t seed = 0xC0FFEE;
    };

    SerdesLink(Kernel &kernel, Component *parent, std::string name,
               LinkId id, const Params &params);

    LinkId id() const { return id_; }

    /** Upstream endpoint kind; defaults to Host (single-cube wiring). */
    LinkEndpointMode endpointMode() const { return mode_; }
    void setEndpointMode(LinkEndpointMode m) { mode_ = m; }

    /** Ticks to serialize one 16 B flit on this link. */
    Tick flitPeriod() const { return flitPeriod_; }

    /** One-direction bandwidth in GB/s. */
    double bandwidthGBs() const;

    // ----- transmit side -----

    /** True if @p flits of remote buffer tokens are free. */
    bool canSend(LinkDir dir, std::uint32_t flits) const;

    /**
     * Reserve @p flits of tokens ahead of send().  Separating the two
     * lets a NoC ejection port reserve at switch-allocation time and
     * transmit at delivery time without over-committing tokens.
     */
    void reserveTokens(LinkDir dir, std::uint32_t flits);

    /** Transmit a packet whose tokens were reserved. */
    void send(LinkDir dir, const HmcPacketPtr &pkt);

    /** Fired whenever tokens return (transmit may resume). */
    void setOnTokensFree(LinkDir dir, InlineFunction<void()> fn);

    // ----- token visibility (adaptive chain routing telemetry) -----

    /** Remote-buffer tokens currently free in @p dir. */
    std::uint32_t tokensFree(LinkDir dir) const;

    /** Tokens consumed (reserved or riding the wire) in @p dir --
     *  the link's live backpressure signal. */
    std::uint32_t tokensInUse(LinkDir dir) const;

    /** Total token pool of @p dir (the remote RX buffer, in flits). */
    std::uint32_t tokenCapacity(LinkDir dir) const;

    // ----- receive side -----

    /** Fired when a packet lands in the RX buffer. */
    void setOnRxAvailable(LinkDir dir, InlineFunction<void()> fn);

    bool rxAvailable(LinkDir dir) const;
    const HmcPacketPtr &rxPeek(LinkDir dir) const;

    /** Packets waiting in the RX buffer of @p dir. */
    std::size_t rxQueued(LinkDir dir) const;

    /** Peek the @p i-th waiting RX packet (0 = head); used by the
     *  chain switch's head-of-line-blocking accounting. */
    const HmcPacketPtr &rxPeekAt(LinkDir dir, std::size_t i) const;

    /**
     * Drain the head packet from the RX buffer.  Tokens flow back to
     * the sender after the token-return latency.
     */
    HmcPacketPtr rxPop(LinkDir dir);

    // ----- statistics -----
    std::uint64_t packetsSent(LinkDir dir) const;
    std::uint64_t flitsSent(LinkDir dir) const;
    std::uint64_t bytesSent(LinkDir dir) const;
    std::uint64_t crcRetries() const { return retries_.value(); }

    /** Serializer busy fraction over @p window ticks. */
    double utilization(LinkDir dir, Tick window) const;

    // ----- power & thermal -----

    /** Attach the power subsystem's probe (null = no accounting). */
    void setPowerProbe(PowerProbe *probe) { probe_ = probe; }

    /**
     * Thermal throttle: duty-cycle the serializer so the effective
     * bandwidth is the line rate divided by @p slowdown (1.0 = none).
     * After each packet the transmitter idles for (slowdown - 1) times
     * the packet's serialization occupancy.
     */
    void setThrottle(double slowdown);

    double throttleSlowdown() const { return slowdown_; }

    // ----- partitioned-parallel boundary -----

    /**
     * Declare which partition drives each end of direction @p d:
     * @p sender executes the transmit side (send/serialize/tokens) and
     * @p receiver executes the RX side (arrive/rxPop).  Deliveries and
     * token refunds then cross via the destination partition's
     * mailbox.  Unset (serial mode, or a same-partition dedicated host
     * link) means all events stay on the local queue.
     */
    void
    setPartitions(LinkDir d, Partition *sender, Partition *receiver)
    {
        dir(d).txPart = sender;
        dir(d).rxPart = receiver;
    }

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

  private:
    struct Direction {
        Direction(Kernel &kernel, const std::string &name,
                  Tick flit_period, Tick wire_latency,
                  std::uint32_t tokens);

        Channel chan;
        TokenBucket tokens;
        std::uint32_t reserved = 0;
        std::deque<HmcPacketPtr> rxQ;
        InlineFunction<void()> onTokensFree;
        InlineFunction<void()> onRxAvailable;
        Counter packets;
        Counter flits;
        Tick busyBase = 0;  // channel busy at last stats reset
        Tick throttleFreeAt = 0;  // duty-cycle gap end (throttling only)
        /** Partition executing each end of this direction (null =
         *  serial / same-partition: events stay local). */
        Partition *txPart = nullptr;
        Partition *rxPart = nullptr;
    };

    LinkId id_;
    Params params_;
    Tick flitPeriod_;
    Direction dirs_[2];
    Rng rng_;
    Counter retries_;
    MetricSet obsMetrics_;
    PacketTracer *tracer_ = nullptr;
    SelfProfiler *prof_ = nullptr;
    PowerProbe *probe_ = nullptr;
    double slowdown_ = 1.0;
    LinkEndpointMode mode_ = LinkEndpointMode::Host;

    Direction &dir(LinkDir d) { return dirs_[static_cast<unsigned>(d)]; }
    const Direction &
    dir(LinkDir d) const
    {
        return dirs_[static_cast<unsigned>(d)];
    }

    void transmit(LinkDir d, const HmcPacketPtr &pkt, Tick earliest);
    void arrive(LinkDir d, const HmcPacketPtr &pkt);
};

}  // namespace hmcsim

#endif  // HMCSIM_HMC_SERDES_LINK_H_
