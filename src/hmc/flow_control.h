/**
 * @file
 * Token-based link-layer flow control.  The transmitter holds tokens
 * equal to the receiver's buffer space (in flits); tokens are consumed
 * when a packet starts transmission and returned (riding the reverse
 * direction, hence a latency) when the receiver drains the packet.
 */

#ifndef HMCSIM_HMC_FLOW_CONTROL_H_
#define HMCSIM_HMC_FLOW_CONTROL_H_

#include <cstdint>

#include "common/inline_function.h"

namespace hmcsim {

class TokenBucket
{
  public:
    explicit TokenBucket(std::uint32_t capacity);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t available() const { return available_; }
    std::uint32_t inFlight() const { return capacity_ - available_; }

    /** True if @p n tokens could be consumed right now. */
    bool canConsume(std::uint32_t n) const { return available_ >= n; }

    /** Consume @p n tokens; panics if unavailable. */
    void consume(std::uint32_t n);

    /** Return @p n tokens and fire the availability callback. */
    void refund(std::uint32_t n);

    /** Callback fired after every refund (inline capture; the bucket
     *  sits on the link hot path and must never allocate). */
    void setOnAvailable(InlineFunction<void()> fn);

    /** Lifetime counters for diagnostics. */
    std::uint64_t totalConsumed() const { return consumed_; }

  private:
    std::uint32_t capacity_;
    std::uint32_t available_;
    std::uint64_t consumed_ = 0;
    InlineFunction<void()> onAvailable_;
};

}  // namespace hmcsim

#endif  // HMCSIM_HMC_FLOW_CONTROL_H_
