#include "hmc/flow_control.h"

#include "common/log.h"

namespace hmcsim {

TokenBucket::TokenBucket(std::uint32_t capacity)
    : capacity_(capacity), available_(capacity)
{
    if (capacity_ == 0)
        panic("TokenBucket: zero capacity");
}

void
TokenBucket::consume(std::uint32_t n)
{
    if (n > available_)
        panic("TokenBucket: consuming " + std::to_string(n) +
              " tokens with only " + std::to_string(available_) +
              " available");
    available_ -= n;
    consumed_ += n;
}

void
TokenBucket::refund(std::uint32_t n)
{
    if (available_ + n > capacity_)
        panic("TokenBucket: refund past capacity");
    available_ += n;
    if (onAvailable_)
        onAvailable_();
}

void
TokenBucket::setOnAvailable(InlineFunction<void()> fn)
{
    onAvailable_ = std::move(fn);
}

}  // namespace hmcsim
