/**
 * @file
 * HMC transaction-layer packets and the Table-I flit accounting.
 *
 * Every packet carries one flit of header+tail overhead; data payloads
 * add ceil(bytes/16) flits.  Read requests and write responses carry no
 * data; write requests and read responses carry the payload.
 */

#ifndef HMCSIM_HMC_PACKET_H_
#define HMCSIM_HMC_PACKET_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.h"

namespace hmcsim {

/** Transaction-layer packet commands. */
enum class HmcCmd {
    Read,
    Write,
    ReadResponse,
    WriteResponse,
    /** Flow-control packet (TRET/NULL); no data. */
    Flow,
};

std::string toString(HmcCmd cmd);

struct HmcPacket {
    PacketId id = 0;
    HmcCmd cmd = HmcCmd::Read;
    Addr addr = 0;
    TagId tag = kTagInvalid;
    PortId port = 0;
    LinkId link = 0;

    /**
     * Payload size in bytes.  For Read this is the *requested* size
     * (the request itself carries no data).
     */
    std::uint32_t dataBytes = 0;

    /** Filled in after address decode. */
    VaultId vault = 0;

    /** Destination cube (the CUB field); 0 without chaining. */
    CubeId cube = 0;

    /** Issuing host controller; responses return to this host's
     *  chain entry cube (0 in the classic single-host system). */
    HostId host = 0;

    /** Inter-cube pass-through forwards taken by the request. */
    std::uint32_t reqHops = 0;

    /** Inter-cube pass-through forwards taken by the response. */
    std::uint32_t respHops = 0;

    /** Non-minimal chain-routing deviations taken (adaptive policy). */
    std::uint8_t chainMisroutes = 0;

    /** Rotational direction lock a chain misroute imposed; 0 = none
     *  (see kChainDir* in chain/routing_policy.h). */
    std::uint8_t chainDirLock = 0;

    // --- latency decomposition timestamps (ticks) ---
    Tick createdAt = 0;       ///< generated in the FPGA port
    Tick linkTxAt = 0;        ///< first flit onto the external link
    Tick chainIngressAt = 0;  ///< received by the *first* cube's link layer
    Tick cubeArriveAt = 0;    ///< received by the destination cube
    Tick vaultArriveAt = 0;   ///< delivered to the vault controller
    Tick dramStartAt = 0;     ///< DRAM command sequence committed
    Tick dataReadyAt = 0;     ///< DRAM data transferred
    Tick respInjectAt = 0;    ///< response entered the internal NoC
    Tick respHostLinkAt = 0;  ///< response landed in the host link's RX
    Tick hostArriveAt = 0;    ///< response drained by the host controller

    /**
     * Lifecycle identity for the packet tracer: a response inherits
     * its request's id here, so the whole inject->eject lifecycle
     * shares one trace lane.  0 = this packet's own id.
     */
    PacketId traceId = 0;

    /** Flits on the wire, including one flit of header/tail. */
    std::uint32_t flits() const { return flitsFor(cmd, dataBytes); }

    /** Bytes on the wire. */
    std::uint32_t bytes() const { return flits() * kFlitBytes; }

    bool
    isRequest() const
    {
        return cmd == HmcCmd::Read || cmd == HmcCmd::Write;
    }

    bool
    isResponse() const
    {
        return cmd == HmcCmd::ReadResponse || cmd == HmcCmd::WriteResponse;
    }

    bool hasData() const { return dataFlits() != 0; }

    /** Payload flits for any (command, payload) pair (no overhead). */
    static constexpr std::uint32_t
    dataFlitsFor(HmcCmd cmd, std::uint32_t data_bytes)
    {
        return (cmd == HmcCmd::Write || cmd == HmcCmd::ReadResponse)
                   ? (data_bytes + kFlitBytes - 1) / kFlitBytes
                   : 0;
    }

    /** Payload flits only (no overhead). */
    std::uint32_t dataFlits() const { return dataFlitsFor(cmd, dataBytes); }

    /** Table I flit count for any (command, payload) pair. */
    static constexpr std::uint32_t
    flitsFor(HmcCmd cmd, std::uint32_t data_bytes)
    {
        return 1 + dataFlitsFor(cmd, data_bytes);
    }

    /**
     * Construct the response matching this request (copies identity
     * fields).  Panics when called on a non-request.
     */
    HmcPacket makeResponse() const;

    /** makeResponse() in a pool-allocated shared_ptr (the hot path). */
    std::shared_ptr<HmcPacket> makeResponsePtr() const;
};

using HmcPacketPtr = std::shared_ptr<HmcPacket>;

/**
 * Allocate a read request.  @p data_bytes must be in [16, 128] -- the
 * payload range the HMC 1.1 spec supports (1..8 flits).
 */
HmcPacketPtr makeReadRequest(Addr addr, std::uint32_t data_bytes,
                             PortId port);

/** Allocate a write request of @p data_bytes payload. */
HmcPacketPtr makeWriteRequest(Addr addr, std::uint32_t data_bytes,
                              PortId port);

/** Validate a payload size; raises fatal() when out of spec. */
void validateDataBytes(std::uint32_t data_bytes);

}  // namespace hmcsim

#endif  // HMCSIM_HMC_PACKET_H_
