#include "hmc/packet_pool.h"

#include <atomic>
#include <new>

#include "common/log.h"
#include "common/partition_mutex.h"
#include "common/thread_annotations.h"

namespace hmcsim {

namespace {

/** Freed blocks carry the freelist link inside their own memory. */
struct FreeNode {
    FreeNode *next;
};

constexpr int kMaxBins = 8;

/**
 * One freelist per distinct block size.  allocate_shared produces a
 * single control-block-plus-packet size per packet type, so in
 * practice one bin is live; the small table keeps the pool correct if
 * another pooled type ever appears.  Counts are signed: with the
 * parallel core a packet can be acquired on one thread and released on
 * another (packets migrate across partitions), so a single thread's
 * live count may legitimately go negative -- only the sum over all
 * pools is meaningful.
 */
struct Bin {
    std::size_t size = 0;
    FreeNode *head = nullptr;
    FreeNode *tail = nullptr;
    long long freeBlocks = 0;
    long long liveBlocks = 0;
};

struct BinTable {
    Bin bins[kMaxBins];
    int numBins = 0;

    Bin &
    binFor(std::size_t size)
    {
        for (int i = 0; i < numBins; ++i) {
            if (bins[i].size == size)
                return bins[i];
        }
        if (numBins == kMaxBins)
            panic("packet pool: too many distinct block sizes");
        Bin &b = bins[numBins++];
        b.size = size;
        return b;
    }
};

/** Pooling decision for future allocations; read lock-free from the
 *  allocator constructor on any thread. */
std::atomic<bool> g_enabled{true};

struct ThreadPool;

/**
 * Cross-thread state: the registry of live per-thread pools (stats
 * walk it) and the orphan bins that adopt a dead thread's freelists so
 * its blocks stay reachable (leak checkers) and reusable.  Guarded by
 * a real mutex -- this is the pool's only contended surface, touched
 * at thread birth/death, on a local freelist miss, and by stats.
 */
RealMutex g_regMu;
ThreadPool *g_pools HMCSIM_GUARDED_BY(g_regMu) = nullptr;
BinTable g_orphans HMCSIM_GUARDED_BY(g_regMu);

/**
 * The calling thread's freelists.  Every acquire/release touches only
 * this -- no locks, no sharing -- which is the sharding the global
 * single-threaded pool always anticipated: under the parallel core
 * each worker churns its partitions' packets through its own bins.
 */
struct ThreadPool {
    BinTable table;
    ThreadPool *next = nullptr;  // registry link
    ThreadPool *prev = nullptr;

    ThreadPool()
    {
        RealLock lock(g_regMu);
        next = g_pools;
        if (g_pools)
            g_pools->prev = this;
        g_pools = this;
    }

    /**
     * Thread exit: fold the freelists and counts into the orphan
     * bins.  Without this a worker's parked blocks would become
     * unreachable-but-allocated memory the moment its thread dies --
     * a leak-checker report and, over many runs, a real leak.
     */
    ~ThreadPool()
    {
        RealLock lock(g_regMu);
        for (int i = 0; i < table.numBins; ++i) {
            Bin &b = table.bins[i];
            Bin &o = g_orphans.binFor(b.size);
            if (b.head) {
                b.tail->next = o.head;
                o.head = b.head;
                if (!o.tail)
                    o.tail = b.tail;
            }
            o.freeBlocks += b.freeBlocks;
            o.liveBlocks += b.liveBlocks;
        }
        if (prev)
            prev->next = next;
        else
            g_pools = next;
        if (next)
            next->prev = prev;
    }
};

ThreadPool &
localPool()
{
    thread_local ThreadPool tp;
    return tp;
}

}  // namespace

void
setPacketPoolEnabled(bool enabled)
{
    g_enabled.store(enabled, std::memory_order_relaxed);
}

bool
packetPoolEnabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

std::size_t
packetPoolFreeBlocks()
{
    // Stats walk every live thread's bins; callers hold the same
    // quiescence the parallel core's barriers establish (no worker is
    // inside acquire/release while the main thread reads stats).
    RealLock lock(g_regMu);
    long long n = 0;
    for (const ThreadPool *p = g_pools; p; p = p->next) {
        for (int i = 0; i < p->table.numBins; ++i)
            n += p->table.bins[i].freeBlocks;
    }
    for (int i = 0; i < g_orphans.numBins; ++i)
        n += g_orphans.bins[i].freeBlocks;
    return static_cast<std::size_t>(n < 0 ? 0 : n);
}

std::size_t
packetPoolLiveBlocks()
{
    RealLock lock(g_regMu);
    long long n = 0;
    for (const ThreadPool *p = g_pools; p; p = p->next) {
        for (int i = 0; i < p->table.numBins; ++i)
            n += p->table.bins[i].liveBlocks;
    }
    for (int i = 0; i < g_orphans.numBins; ++i)
        n += g_orphans.bins[i].liveBlocks;
    return static_cast<std::size_t>(n < 0 ? 0 : n);
}

void *
packetPoolAcquire(std::size_t size, std::size_t align)
{
    if (align > alignof(std::max_align_t) || size < sizeof(FreeNode))
        panic("packet pool: unsupported block geometry");
    Bin &b = localPool().table.binFor(size);
    ++b.liveBlocks;
    if (b.head == nullptr) {
        // Local miss: adopt a dead thread's entire freelist for this
        // size before touching the system allocator.
        RealLock lock(g_regMu);
        Bin &o = g_orphans.binFor(size);
        if (o.head) {
            b.head = o.head;
            b.tail = o.tail;
            b.freeBlocks += o.freeBlocks;
            o.head = o.tail = nullptr;
            o.freeBlocks = 0;
        }
    }
    if (b.head != nullptr) {
        FreeNode *n = b.head;
        b.head = n->next;
        if (b.head == nullptr)
            b.tail = nullptr;
        --b.freeBlocks;
        n->~FreeNode();
        return n;
    }
    return ::operator new(size);
}

void
packetPoolRelease(void *p, std::size_t size)
{
    Bin &b = localPool().table.binFor(size);
    FreeNode *n = new (p) FreeNode{b.head};
    if (b.head == nullptr)
        b.tail = n;
    b.head = n;
    ++b.freeBlocks;
    --b.liveBlocks;
}

}  // namespace hmcsim
