#include "hmc/packet_pool.h"

#include <new>

#include "common/log.h"
#include "common/partition_mutex.h"
#include "common/thread_annotations.h"

namespace hmcsim {

namespace {

/** Freed blocks carry the freelist link inside their own memory. */
struct FreeNode {
    FreeNode *next;
};

/**
 * Capability over the global freelist.  Assert-only today (the pool is
 * deliberately global-single-threaded); the partitioned-parallel core
 * will shard bins per partition, each behind its own PartitionMutex,
 * and the annotations below already enforce that every touch of bin
 * state happens under the capability.
 */
PartitionMutex g_mu;

/**
 * One freelist per distinct block size.  allocate_shared produces a
 * single control-block-plus-packet size per packet type, so in
 * practice one bin is live; the small table keeps the pool correct if
 * another pooled type ever appears.  Trivial types only: the bins are
 * never destroyed, so blocks still in flight at static destruction
 * cannot touch a dead freelist.
 */
struct Bin {
    std::size_t size;
    FreeNode *head;
    std::size_t freeBlocks;
    std::size_t liveBlocks;
};

constexpr int kMaxBins = 8;
Bin g_bins[kMaxBins] HMCSIM_GUARDED_BY(g_mu);
int g_numBins HMCSIM_GUARDED_BY(g_mu) = 0;

bool g_enabled HMCSIM_GUARDED_BY(g_mu) = true;

Bin &
binFor(std::size_t size) HMCSIM_REQUIRES(g_mu)
{
    for (int i = 0; i < g_numBins; ++i) {
        if (g_bins[i].size == size)
            return g_bins[i];
    }
    if (g_numBins == kMaxBins)
        panic("packet pool: too many distinct block sizes");
    Bin &b = g_bins[g_numBins++];
    b.size = size;
    b.head = nullptr;
    b.freeBlocks = 0;
    b.liveBlocks = 0;
    return b;
}

}  // namespace

void
setPacketPoolEnabled(bool enabled)
{
    PartitionLock lock(g_mu);
    g_enabled = enabled;
}

bool
packetPoolEnabled()
{
    PartitionLock lock(g_mu);
    return g_enabled;
}

std::size_t
packetPoolFreeBlocks()
{
    PartitionLock lock(g_mu);
    std::size_t n = 0;
    for (int i = 0; i < g_numBins; ++i)
        n += g_bins[i].freeBlocks;
    return n;
}

std::size_t
packetPoolLiveBlocks()
{
    PartitionLock lock(g_mu);
    std::size_t n = 0;
    for (int i = 0; i < g_numBins; ++i)
        n += g_bins[i].liveBlocks;
    return n;
}

void *
packetPoolAcquire(std::size_t size, std::size_t align)
{
    if (align > alignof(std::max_align_t) || size < sizeof(FreeNode))
        panic("packet pool: unsupported block geometry");
    PartitionLock lock(g_mu);
    Bin &b = binFor(size);
    ++b.liveBlocks;
    if (b.head != nullptr) {
        FreeNode *n = b.head;
        b.head = n->next;
        --b.freeBlocks;
        n->~FreeNode();
        return n;
    }
    return ::operator new(size);
}

void
packetPoolRelease(void *p, std::size_t size)
{
    PartitionLock lock(g_mu);
    Bin &b = binFor(size);
    FreeNode *n = new (p) FreeNode{b.head};
    b.head = n;
    ++b.freeBlocks;
    --b.liveBlocks;
}

}  // namespace hmcsim
