/**
 * @file
 * Vault controller: the per-vault memory controller in the logic layer.
 *
 * Requests arrive from the internal NoC into a finite input queue, are
 * decoded and dispatched into per-bank command queues (the paper's
 * Fig. 14 infers exactly this one-queue-per-bank structure), scheduled
 * against the DRAM timing model, and answered with response packets
 * injected back into the NoC toward the originating link.
 *
 * Backpressure chain: NoC ejection stalls when the input queue is
 * full; dispatch stalls when a bank queue is full (head-of-line);
 * scheduling stalls when the response queue cannot hold the reply.
 */

#ifndef HMCSIM_HMC_VAULT_CONTROLLER_H_
#define HMCSIM_HMC_VAULT_CONTROLLER_H_

#include <deque>
#include <vector>

#include "common/stats.h"
#include "dram/refresh.h"
#include "dram/vault_memory.h"
#include "hmc/address_map.h"
#include "hmc/hmc_config.h"
#include "hmc/packet.h"
#include "noc/network.h"
#include "obs/metrics.h"

namespace hmcsim {

class PacketTracer;
class SelfProfiler;

class VaultController : public Component
{
  public:
    struct Params {
        std::uint32_t inputQueueFlits = 64;
        std::uint32_t bankQueueDepth = 8;
        std::uint32_t responseQueueFlits = 96;
        Tick frontendLatency = 4000;
        Tick backendLatency = 2000;
        /** This vault's extra backend latency per response data flit
         *  (systematic per-vault variation; see HmcConfig). */
        Tick jitterPerFlit = 0;
        /** Minimum spacing between two request plans (scheduler rate). */
        Tick requestCycle = 6400;
        SchedulerKind scheduler = SchedulerKind::Fifo;
        PagePolicy pagePolicy = PagePolicy::Closed;
        Tick trefi = 0;
    };

    /**
     * @param vault this controller's vault id
     * @param endpoint this controller's NoC endpoint id
     * @param net the logic-layer NoC (owned by the device)
     * @param map shared address map (owned by the device)
     */
    VaultController(Kernel &kernel, Component *parent, std::string name,
                    VaultId vault, NodeId endpoint, Network &net,
                    const AddressMap &map, const DramTimingParams &timing,
                    std::uint32_t num_banks, const Params &params);

    VaultId vault() const { return vault_; }
    NodeId endpoint() const { return endpoint_; }
    VaultMemory &memory() { return mem_; }

    // ----- NoC endpoint contract (wired up by HmcDevice) -----

    /** Reserve input-queue space for an incoming request. */
    bool tryReserveInput(std::uint32_t flits);

    /** A request message fully ejected from the NoC. */
    void deliverRequest(const NocMessage &msg);

    /** NoC injection credits freed; retry pending responses. */
    void onInjectSpace();

    // ----- power & thermal -----

    /** Attach the power probe to this vault's banks and TSV bus,
     *  attributing bank energy across @p num_dram_layers dies. */
    void
    setPowerProbe(PowerProbe *probe, std::uint32_t num_dram_layers = 1)
    {
        mem_.setPowerProbe(probe, num_dram_layers);
    }

    /**
     * Thermal throttle: stretch the scheduler's request cycle by
     * @p slowdown (1.0 = none), capping this vault's request rate.
     */
    void setThrottle(double slowdown);

    double throttleSlowdown() const { return slowdown_; }

    // ----- statistics -----
    std::uint64_t requestsServed() const { return served_.value(); }
    std::uint64_t readBytes() const { return readBytes_.value(); }
    std::uint64_t writeBytes() const { return writeBytes_.value(); }
    std::uint64_t refreshesIssued() const
    {
        return refresh_.refreshesIssued();
    }

    /** Arrival-to-response-injection latency, ns. */
    const SampleStats &serviceLatencyNs() const { return serviceNs_; }

    /** Peak total occupancy of the bank queues (requests). */
    std::uint32_t peakBankQueueOccupancy() const { return peakBankQ_; }

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

  private:
    struct BankState {
        std::deque<HmcPacketPtr> q;
        bool busy = false;
        bool waitingForResponseSpace = false;
    };

    VaultId vault_;
    NodeId endpoint_;
    Network &net_;
    const AddressMap &map_;
    Params params_;
    VaultMemory mem_;
    RefreshPolicy refresh_;

    /** Input queue: (ready-after-frontend, packet). */
    std::deque<std::pair<Tick, HmcPacketPtr>> inputQ_;
    std::uint32_t inputUsedFlits_ = 0;

    std::vector<BankState> banks_;
    std::uint32_t bankQOccupancy_ = 0;
    std::uint32_t peakBankQ_ = 0;

    std::deque<HmcPacketPtr> respQ_;
    std::uint32_t respUsedFlits_ = 0;
    std::uint32_t respReservedFlits_ = 0;

    Counter served_;
    Counter readBytes_;
    Counter writeBytes_;
    SampleStats serviceNs_;

    MetricSet obsMetrics_;
    PacketTracer *tracer_ = nullptr;
    SelfProfiler *prof_ = nullptr;

    Tick nextPlanAllowed_ = 0;
    bool planRetryPending_ = false;
    std::uint32_t lastPlannedBank_ = 0;
    double slowdown_ = 1.0;

    Tick effectiveRequestCycle() const;
    void processInput();
    void tryScheduleAll();
    void trySchedule(BankId b);
    void finishRequest(const HmcPacketPtr &pkt);
    void tryInjectResponses();
    std::size_t pickRequest(const BankState &bank) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_HMC_VAULT_CONTROLLER_H_
