/**
 * @file
 * All configuration knobs of the HMC device model, with defaults that
 * reproduce the paper's AC-510 HMC 1.1 setup: 4 GB, 16 vaults in 4
 * quadrants, 16 banks/vault, two half-width (8-lane) 15 Gbps links.
 */

#ifndef HMCSIM_HMC_HMC_CONFIG_H_
#define HMCSIM_HMC_HMC_CONFIG_H_

#include <cstdint>
#include <string>

#include "common/config.h"
#include "common/types.h"
#include "common/units.h"
#include "dram/timing.h"
#include "dram/vault_memory.h"
#include "noc/router.h"
#include "power/power_config.h"

namespace hmcsim {

/** Request scheduling policy inside a vault controller. */
enum class SchedulerKind {
    /** Per-bank FIFO (default). */
    Fifo,
    /** First-ready, first-come-first-served (prefers open-row hits). */
    FrFcfs,
};

SchedulerKind schedulerFromString(const std::string &s);
std::string toString(SchedulerKind k);

PagePolicy pagePolicyFromString(const std::string &s);
std::string toString(PagePolicy p);

/**
 * Multi-cube chaining topologies (realised by src/chain/):
 *
 *   daisy  host - cube0 - cube1 - ... - cubeN-1
 *   ring   daisy plus a closing hop cubeN-1 - cube0 (shortest-path
 *          static routing in both directions)
 *   star   every cube is directly host-attached (needs
 *          numCubes <= numLinks); no pass-through hops
 */
enum class ChainTopology {
    Daisy,
    Ring,
    Star,
};

ChainTopology chainTopologyFromString(const std::string &s);
std::string toString(ChainTopology t);

/**
 * Multi-cube chaining parameters (the HMC CUB field / pass-through
 * links).  With numCubes == 1 no chain machinery is built and the
 * system is bit-identical to a single-cube-only build.
 */
struct ChainParams {
    /** Cubes in the network (CUB field), power of two in [1, 8]. */
    std::uint32_t numCubes = 1;

    /** "daisy", "ring" or "star". */
    std::string topology = "daisy";

    /**
     * Where the cube bits sit in the global address:
     *   "cube_high"  above the per-cube address (contiguous cubes)
     *   "cube_low"   right above the block offset (blocks stripe
     *                across cubes round-robin)
     */
    std::string interleave = "cube_high";

    /**
     * Store-and-forward latency through a cube's pass-through switch
     * per hop, on top of the downstream link's serialization/SerDes.
     */
    Tick passThroughLatency = nsToTicks(12.0);

    /** Per-output forward queue depth in the pass-through switch. */
    std::uint32_t forwardQueuePackets = 8;

    /**
     * Chain routing policy (see chain/routing_policy.h):
     *   "static"    route-table lookup, bit-identical legacy behavior
     *   "adaptive"  occupancy/token-driven minimal adaptive routing on
     *               rings, with bounded direction-locked misroutes and
     *               congestion-aware host entry-link selection
     */
    std::string routing = "static";

    /**
     * Adaptive hysteresis: congestion advantage (flits) the alternate
     * direction needs before the switch deviates from the static
     * choice.  Keeps a zero-load adaptive chain on exact static paths.
     */
    std::uint32_t adaptiveThresholdFlits = 8;

    /**
     * Minimum congestion score (flits) of the preferred minimal port
     * before a non-minimal (long-way-around) misroute is considered.
     */
    std::uint32_t adaptiveMisrouteThresholdFlits = 48;

    /** Non-minimal deviations allowed per packet; 0 disables
     *  misrouting entirely (tie-splitting stays active). */
    std::uint32_t adaptiveMaxMisroutes = 1;
};

struct HmcConfig {
    // ----- geometry -----
    std::uint32_t numVaults = 16;
    std::uint32_t numQuadrants = 4;
    std::uint32_t numBanksPerVault = 16;
    std::uint64_t capacityBytes = 4ull << 30;
    std::uint32_t blockBytes = 128;  // address-map max block size
    std::uint32_t rowBytes = 256;    // DRAM row (page) size

    /** "vault_then_bank" (spec Fig. 3) or "bank_then_vault". */
    std::string mapScheme = "vault_then_bank";

    // ----- external links -----
    std::uint32_t numLinks = 2;
    std::uint32_t lanesPerLink = 8;  // half width
    double linkGbps = 15.0;
    Tick linkWireLatency = nsToTicks(1.6);
    /** Per-direction SerDes+PHY pipeline latency per packet. */
    Tick serdesLatency = nsToTicks(16.0);
    /**
     * RX buffer (token pool) per link direction, in flits.  The
     * response-direction pool doubles as the host controller's reorder
     * buffer; it must be deep enough that a saturated deserializer
     * queues responses at the host (FIFO, arrival-fair) instead of
     * backing them up into the NoC, where per-input arbitration would
     * starve the far quadrants.
     */
    std::uint32_t linkTokens = 256;
    Tick tokenReturnLatency = nsToTicks(3.2);
    double crcErrorProb = 0.0;
    Tick retryDelay = nsToTicks(100.0);
    std::uint64_t linkSeed = 0xC0FFEE;

    // ----- logic-layer NoC -----
    std::string topology = "quadrant_xbar";
    RouterParams noc;  // defaults in noc/router.h

    // ----- vault controllers -----
    std::uint32_t vcInputQueueFlits = 16;
    std::uint32_t vcBankQueueDepth = 128;
    std::uint32_t vcResponseQueueFlits = 96;
    Tick vcFrontendLatency = nsToTicks(4.0);
    Tick vcBackendLatency = nsToTicks(2.0);
    /**
     * Scheduler pipeline: minimum spacing between two request plans in
     * one vault controller.  6.4 ns caps a vault at ~156 M requests/s,
     * which yields the paper's ~10 GB/s one-vault plateau.
     */
    Tick vcRequestCycle = nsToTicks(6.4);
    std::string scheduler = "fifo";
    std::string pagePolicy = "closed";
    Tick trefi = 0;  // refresh disabled by default

    /**
     * Per-vault systematic service-latency variation, in ns per
     * response data flit.  Stands in for the physical effects the
     * paper observes but cannot isolate (Section IV-D: per-vault
     * latency distributions differ although the position contributes
     * little): each vault v gets a fixed factor f_v in [0,1) from
     * vaultJitterSeed, and every request pays
     * f_v * vaultJitterNsPerFlit * (response data flits) extra.
     * Scaling per flit reproduces the paper's observation that larger
     * request sizes show wider per-vault variation (Figs. 10/11).
     * Set to 0 for a perfectly uniform cube.
     */
    double vaultJitterNsPerFlit = 25.0;
    std::uint64_t vaultJitterSeed = 0x5EED;

    // ----- DRAM -----
    std::string dramPreset = "hmc_gen2";

    // ----- multi-cube chaining (single cube by default) -----
    ChainParams chain;

    // ----- power & thermal (observation-only by default) -----
    PowerConfig power;

    /** Derived: peak bandwidth per Eq. 1, decimal GB/s, bidirectional. */
    double peakBandwidthGBs() const;

    /** Derived: one-direction link-aggregate bandwidth in GB/s. */
    double linkBandwidthGBsPerDirection() const;

    /** Derived: vault count per quadrant. */
    std::uint32_t vaultsPerQuadrant() const;

    /** Capacity of the whole cube network in bytes. */
    std::uint64_t
    totalCapacityBytes() const
    {
        return capacityBytes * chain.numCubes;
    }

    /** Per-vault capacity in bytes. */
    std::uint64_t vaultBytes() const { return capacityBytes / numVaults; }

    /** Per-bank capacity in bytes. */
    std::uint64_t
    bankBytes() const
    {
        return vaultBytes() / numBanksPerVault;
    }

    /** DRAM timing parameters resolved from the preset name. */
    DramTimingParams dramTiming() const;

    /** Raise fatal() on inconsistent settings. */
    void validate() const;

    /** Read every "hmc.*" key from @p cfg over the defaults. */
    static HmcConfig fromConfig(const Config &cfg);

    /** Write all values into @p cfg under "hmc.*". */
    void toConfig(Config &cfg) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_HMC_HMC_CONFIG_H_
