#include "hmc/address_map.h"

#include "common/bitutil.h"
#include "common/log.h"

namespace hmcsim {

AddressMap::AddressMap(const HmcConfig &cfg)
    : capacity_(cfg.capacityBytes), blockBytes_(cfg.blockBytes),
      rowBytes_(cfg.rowBytes), numVaults_(cfg.numVaults),
      numBanks_(cfg.numBanksPerVault),
      vaultsPerQuad_(cfg.vaultsPerQuadrant()),
      vaultFirst_(cfg.mapScheme == "vault_then_bank"),
      numCubes_(cfg.chain.numCubes),
      cubeLowInterleave_(cfg.chain.interleave == "cube_low")
{
    offsetBits_ = log2Exact(blockBytes_);
    vaultBits_ = log2Exact(numVaults_);
    bankBits_ = log2Exact(numBanks_);
    addrBits_ = log2Exact(capacity_);
    cubeBits_ = log2Exact(numCubes_);
    cubeLow_ = cubeLowInterleave_ ? offsetBits_ : addrBits_;
    if (vaultFirst_) {
        vaultLow_ = offsetBits_;
        bankLow_ = vaultLow_ + vaultBits_;
        blockIdxLow_ = bankLow_ + bankBits_;
    } else {
        bankLow_ = offsetBits_;
        vaultLow_ = bankLow_ + bankBits_;
        blockIdxLow_ = vaultLow_ + vaultBits_;
    }
    blocksPerRow_ = rowBytes_ / blockBytes_;
    if (blocksPerRow_ == 0)
        fatal("address map: row smaller than block");
}

void
AddressMap::splitCube(Addr addr, CubeId &cube, Addr &local) const
{
    if (cubeBits_ == 0) {
        cube = 0;
        local = addr;
        return;
    }
    cube = static_cast<CubeId>(extractBits(addr, cubeLow_, cubeBits_));
    if (cubeLowInterleave_) {
        const Addr low = addr & ((Addr{1} << cubeLow_) - 1);
        local = ((addr >> (cubeLow_ + cubeBits_)) << cubeLow_) | low;
    } else {
        local = addr & (capacity_ - 1);
    }
}

Addr
AddressMap::expandLocal(Addr local, Addr cube_field) const
{
    if (cubeBits_ == 0)
        return local;
    if (!cubeLowInterleave_)
        return local | (cube_field << cubeLow_);
    const Addr low = local & ((Addr{1} << cubeLow_) - 1);
    return ((local >> cubeLow_) << (cubeLow_ + cubeBits_)) |
        (cube_field << cubeLow_) | low;
}

CubeId
AddressMap::decodeCube(Addr addr) const
{
    if (cubeBits_ == 0)
        return 0;
    return static_cast<CubeId>(extractBits(addr, cubeLow_, cubeBits_));
}

DecodedAddr
AddressMap::decode(Addr global) const
{
    if (global >= totalCapacity())
        panic("AddressMap::decode: address 0x" + std::to_string(global) +
              " beyond capacity");
    CubeId cube = 0;
    Addr addr = 0;
    splitCube(global, cube, addr);
    DecodedAddr d;
    d.cube = cube;
    d.blockOffset =
        static_cast<std::uint32_t>(extractBits(addr, 0, offsetBits_));
    d.vault =
        static_cast<VaultId>(extractBits(addr, vaultLow_, vaultBits_));
    d.bank = static_cast<BankId>(extractBits(addr, bankLow_, bankBits_));
    d.vaultInQuad = d.vault % vaultsPerQuad_;
    d.quadrant = d.vault / vaultsPerQuad_;
    const std::uint64_t block_idx = addr >> blockIdxLow_;
    d.row = static_cast<RowId>(block_idx / blocksPerRow_);
    const std::uint32_t block_in_row =
        static_cast<std::uint32_t>(block_idx % blocksPerRow_);
    const std::uint32_t linear_in_row =
        block_in_row * blockBytes_ + d.blockOffset;
    d.col = linear_in_row / 32;
    d.beatOffset = linear_in_row % 32;
    return d;
}

Addr
AddressMap::encode(const DecodedAddr &d) const
{
    if (d.vault >= numVaults_ || d.bank >= numBanks_ ||
        d.cube >= numCubes_)
        panic("AddressMap::encode: cube/vault/bank out of range");
    const std::uint64_t beat_addr =
        static_cast<std::uint64_t>(d.col) * 32 + d.beatOffset;
    const std::uint64_t block_in_row = beat_addr / blockBytes_;
    const std::uint32_t offset =
        static_cast<std::uint32_t>(beat_addr % blockBytes_);
    const std::uint64_t block_idx =
        static_cast<std::uint64_t>(d.row) * blocksPerRow_ + block_in_row;
    Addr addr = block_idx << blockIdxLow_;
    addr = insertBits(addr, vaultLow_, vaultBits_, d.vault);
    addr = insertBits(addr, bankLow_, bankBits_, d.bank);
    addr = insertBits(addr, 0, offsetBits_, offset);
    return expandLocal(addr, d.cube);
}

DramAccess
AddressMap::toAccess(Addr addr, std::uint32_t bytes, bool is_write) const
{
    const DecodedAddr d = decode(addr);
    DramAccess a;
    a.bank = d.bank;
    a.row = d.row;
    a.col = d.col;
    a.bytes = bytes;
    a.isWrite = is_write;
    return a;
}

AddressPattern
AddressMap::pattern(std::uint32_t num_vaults, std::uint32_t num_banks,
                    VaultId base_vault, BankId base_bank) const
{
    if (!isPow2(num_vaults) || num_vaults > numVaults_)
        fatal("address pattern: vault count must be a power of two <= " +
              std::to_string(numVaults_));
    if (!isPow2(num_banks) || num_banks > numBanks_)
        fatal("address pattern: bank count must be a power of two <= " +
              std::to_string(numBanks_));
    if (base_vault % num_vaults != 0 || base_vault >= numVaults_)
        fatal("address pattern: base vault must be aligned to the count");
    if (base_bank % num_banks != 0 || base_bank >= numBanks_)
        fatal("address pattern: base bank must be aligned to the count");

    const unsigned free_vault_bits = log2Exact(num_vaults);
    const unsigned free_bank_bits = log2Exact(num_banks);

    // Start fully random within the capacity, then pin the high vault
    // and bank bits.
    Addr mask = capacity_ - 1;
    Addr fixed = 0;

    // Vault field: low free_vault_bits stay random; the rest are fixed
    // to base_vault's bits.
    mask = insertBits(mask, vaultLow_ + free_vault_bits,
                      vaultBits_ - free_vault_bits, 0);
    fixed = insertBits(fixed, vaultLow_, vaultBits_, base_vault);

    mask = insertBits(mask, bankLow_ + free_bank_bits,
                      bankBits_ - free_bank_bits, 0);
    fixed = insertBits(fixed, bankLow_, bankBits_, base_bank);

    // Widen to the global address space with the cube bits random, so
    // confined patterns still spread across every cube in the network.
    return AddressPattern{expandLocal(mask, numCubes_ - 1),
                          expandLocal(fixed, 0)};
}

AddressPattern
AddressMap::vaultPattern(VaultId vault) const
{
    if (vault >= numVaults_)
        fatal("address pattern: vault out of range");
    Addr mask = capacity_ - 1;
    mask = insertBits(mask, vaultLow_, vaultBits_, 0);
    Addr fixed = insertBits(0, vaultLow_, vaultBits_, vault);
    return AddressPattern{expandLocal(mask, numCubes_ - 1),
                          expandLocal(fixed, 0)};
}

AddressPattern
AddressMap::cubePattern(CubeId cube) const
{
    if (cube >= numCubes_)
        fatal("address pattern: cube out of range");
    return AddressPattern{expandLocal(capacity_ - 1, 0),
                          expandLocal(0, cube)};
}

}  // namespace hmcsim
