#include "hmc/serdes_link.h"

#include "common/log.h"
#include "common/units.h"
#include "obs/observability.h"
#include "sim/kernel.h"

namespace hmcsim {

SerdesLink::Direction::Direction(Kernel &kernel, const std::string &name,
                                 Tick flit_period, Tick wire_latency,
                                 std::uint32_t token_count)
    : chan(kernel, name, flit_period, wire_latency), tokens(token_count)
{
}

SerdesLink::SerdesLink(Kernel &kernel, Component *parent, std::string name,
                       LinkId id, const Params &params)
    : Component(kernel, parent, std::move(name)), id_(id), params_(params),
      flitPeriod_(serializationTicks(kFlitBytes, params.gbps, params.lanes)),
      dirs_{Direction(kernel, path() + ".down", flitPeriod_,
                      params.wireLatency, params.tokens),
            Direction(kernel, path() + ".up", flitPeriod_,
                      params.wireLatency, params.tokens)},
      rng_(params.seed + id)
{
    if (flitPeriod_ == 0)
        fatal("SerdesLink: link too fast for tick resolution");
    if (Observability *o = kernel.obs()) {
        tracer_ = o->fullTracer();
        prof_ = o->profiler();
        obsMetrics_.bind(o->metricsRegistry(), path());
        obsMetrics_.counter("down_packets", &dirs_[0].packets);
        obsMetrics_.counter("up_packets", &dirs_[1].packets);
        obsMetrics_.counter("down_flits", &dirs_[0].flits);
        obsMetrics_.counter("up_flits", &dirs_[1].flits);
        obsMetrics_.counter("crc_retries", &retries_);
        obsMetrics_.gauge("down_tokens_in_use", [this] {
            return static_cast<double>(dirs_[0].tokens.inFlight());
        });
        obsMetrics_.gauge("up_tokens_in_use", [this] {
            return static_cast<double>(dirs_[1].tokens.inFlight());
        });
    }
}

double
SerdesLink::bandwidthGBs() const
{
    return params_.lanes * params_.gbps / 8.0;
}

bool
SerdesLink::canSend(LinkDir d, std::uint32_t flits) const
{
    return dir(d).tokens.canConsume(flits);
}

void
SerdesLink::reserveTokens(LinkDir d, std::uint32_t flits)
{
    Direction &dd = dir(d);
    dd.tokens.consume(flits);
    dd.reserved += flits;
}

void
SerdesLink::send(LinkDir d, const HmcPacketPtr &pkt)
{
    if (!pkt)
        panic("SerdesLink::send: null packet");
    Direction &dd = dir(d);
    const std::uint32_t flits = pkt->flits();
    if (dd.reserved < flits)
        panic("SerdesLink::send without a token reservation");
    dd.reserved -= flits;
    // First transmission only: chained hops re-send the same packet.
    if (d == LinkDir::HostToCube && pkt->linkTxAt == 0)
        pkt->linkTxAt = now();
    if (tracer_ && tracer_->wants(*pkt))
        tracer_->record(now(), *pkt, TraceStage::LinkTx, kTraceNoWhere,
                        id_);
    transmit(d, pkt, now());
}

void
SerdesLink::setThrottle(double slowdown)
{
    if (slowdown < 1.0)
        panic("SerdesLink::setThrottle: slowdown below 1.0");
    slowdown_ = slowdown;
}

void
SerdesLink::transmit(LinkDir d, const HmcPacketPtr &pkt, Tick earliest)
{
    ProfileScope ps(prof_, "serdes");
    Direction &dd = dir(d);
    // Thermal duty-cycling: respect the idle gap the previous packet
    // imposed.  Unthrottled operation never touches throttleFreeAt, so
    // default timing is bit-identical to a probe-free build.
    if (slowdown_ > 1.0)
        earliest = std::max(earliest, dd.throttleFreeAt);
    const Channel::Times t = dd.chan.reserve(pkt->flits(), earliest);
    if (slowdown_ > 1.0)
        dd.throttleFreeAt = t.serDone +
            static_cast<Tick>((slowdown_ - 1.0) *
                              static_cast<double>(t.serDone - t.start));
    dd.packets.inc();
    dd.flits.inc(pkt->flits());
    if (probe_)
        probe_->record(PowerEvent::SerdesFlit, pkt->flits());
    const Tick deliverAt = t.arrival + params_.serdesLatency;

    // CRC failure: the packet is re-transmitted after the retry delay,
    // consuming link bandwidth again; tokens remain held throughout.
    if (params_.crcErrorProb > 0.0 &&
        rng_.nextBool(params_.crcErrorProb)) {
        retries_.inc();
        const Tick retryAt = t.serDone + params_.retryDelay;
        kernel().scheduleAt(retryAt, [this, d, pkt, retryAt] {
            transmit(d, pkt, retryAt);
        });
        return;
    }

    // Delivery executes in the receiver's partition.  deliverAt is at
    // least flit serialization + wire + SerDes pipeline past now(), so
    // it satisfies the parallel core's lookahead contract by
    // construction (the lookahead is the minimum of exactly this sum).
    kernel().postCross(dd.rxPart, deliverAt,
                       [this, d, pkt] { arrive(d, pkt); });
}

void
SerdesLink::arrive(LinkDir d, const HmcPacketPtr &pkt)
{
    Direction &dd = dir(d);
    // Requests stamp the cube-arrival decomposition timestamps in
    // whichever direction the hop runs (ring counter-clockwise legs
    // use CubeToHost): every hop overwrites cubeArriveAt, so the last
    // write is the destination cube, while chainIngressAt keeps the
    // first.  Responses' timestamps were fixed at their origin cube.
    if (pkt->isRequest()) {
        pkt->cubeArriveAt = now();
        if (pkt->chainIngressAt == 0)
            pkt->chainIngressAt = now();
    } else if (pkt->isResponse()) {
        // Every return hop overwrites, so the last write is the issuing
        // host's link RX -- the end of the fabric's share of the
        // response path (what remains is host-side deserialize/drain).
        pkt->respHostLinkAt = now();
    }
    if (tracer_ && tracer_->wants(*pkt))
        tracer_->record(now(), *pkt, TraceStage::LinkRx, kTraceNoWhere,
                        id_);
    dd.rxQ.push_back(pkt);
    if (dd.onRxAvailable)
        dd.onRxAvailable();
}

void
SerdesLink::setOnTokensFree(LinkDir d, InlineFunction<void()> fn)
{
    Direction &dd = dir(d);
    dd.onTokensFree = std::move(fn);
    dd.tokens.setOnAvailable([this, &dd] {
        if (dd.onTokensFree)
            dd.onTokensFree();
    });
}

void
SerdesLink::setOnRxAvailable(LinkDir d, InlineFunction<void()> fn)
{
    dir(d).onRxAvailable = std::move(fn);
}

bool
SerdesLink::rxAvailable(LinkDir d) const
{
    return !dir(d).rxQ.empty();
}

const HmcPacketPtr &
SerdesLink::rxPeek(LinkDir d) const
{
    if (dir(d).rxQ.empty())
        panic("SerdesLink::rxPeek: RX buffer empty");
    return dir(d).rxQ.front();
}

std::size_t
SerdesLink::rxQueued(LinkDir d) const
{
    return dir(d).rxQ.size();
}

const HmcPacketPtr &
SerdesLink::rxPeekAt(LinkDir d, std::size_t i) const
{
    const Direction &dd = dir(d);
    if (i >= dd.rxQ.size())
        panic("SerdesLink::rxPeekAt: index out of range");
    return dd.rxQ[i];
}

std::uint32_t
SerdesLink::tokensFree(LinkDir d) const
{
    return dir(d).tokens.available();
}

std::uint32_t
SerdesLink::tokensInUse(LinkDir d) const
{
    return dir(d).tokens.inFlight();
}

std::uint32_t
SerdesLink::tokenCapacity(LinkDir d) const
{
    return dir(d).tokens.capacity();
}

HmcPacketPtr
SerdesLink::rxPop(LinkDir d)
{
    Direction &dd = dir(d);
    if (dd.rxQ.empty())
        panic("SerdesLink::rxPop: RX buffer empty");
    HmcPacketPtr pkt = dd.rxQ.front();
    dd.rxQ.pop_front();
    const std::uint32_t flits = pkt->flits();
    // The token bucket is transmit-side state, so the refund executes
    // in the sender's partition; tokenReturnLatency is part of the
    // parallel core's lookahead floor.
    kernel().postCross(dd.txPart, now() + params_.tokenReturnLatency,
                       [&dd, flits] { dd.tokens.refund(flits); });
    return pkt;
}

std::uint64_t
SerdesLink::packetsSent(LinkDir d) const
{
    return dir(d).packets.value();
}

std::uint64_t
SerdesLink::flitsSent(LinkDir d) const
{
    return dir(d).flits.value();
}

std::uint64_t
SerdesLink::bytesSent(LinkDir d) const
{
    return dir(d).flits.value() * kFlitBytes;
}

double
SerdesLink::utilization(LinkDir d, Tick window) const
{
    if (window == 0)
        return 0.0;
    const Tick busy = dir(d).chan.busyTime() - dir(d).busyBase;
    return static_cast<double>(busy) / static_cast<double>(window);
}

void
SerdesLink::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("down_packets")] =
        static_cast<double>(dirs_[0].packets.value());
    out[statName("up_packets")] =
        static_cast<double>(dirs_[1].packets.value());
    out[statName("down_flits")] =
        static_cast<double>(dirs_[0].flits.value());
    out[statName("up_flits")] = static_cast<double>(dirs_[1].flits.value());
    out[statName("crc_retries")] = static_cast<double>(retries_.value());
}

void
SerdesLink::resetOwnStats()
{
    for (Direction &d : dirs_) {
        d.packets.reset();
        d.flits.reset();
        d.busyBase = d.chan.busyTime();
    }
    retries_.reset();
}

}  // namespace hmcsim
