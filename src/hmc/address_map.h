/**
 * @file
 * HMC 1.1 address mapping (spec Fig. 3 of the paper).
 *
 * Default "vault_then_bank" low-order interleave for a 4 GB cube with
 * 128 B blocks:
 *
 *   bits [6:0]   block offset (128 B)
 *   bits [8:7]   vault-in-quadrant
 *   bits [10:9]  quadrant
 *   bits [14:11] bank
 *   bits [31:15] block index within the bank (row/column)
 *
 * so sequential blocks stripe across all 16 vaults first, then across
 * banks -- a 4 KB OS page touches two banks in each of the 16 vaults.
 * The "bank_then_vault" ablation swaps the vault and bank fields.
 *
 * With multi-cube chaining (hmc.num_cubes > 1) the global address
 * additionally carries a cube (CUB) field: above the per-cube address
 * ("cube_high", contiguous cubes) or right above the block offset
 * ("cube_low", blocks stripe across cubes).  With one cube the layout
 * is bit-identical to the single-cube map.
 */

#ifndef HMCSIM_HMC_ADDRESS_MAP_H_
#define HMCSIM_HMC_ADDRESS_MAP_H_

#include <cstdint>

#include "common/types.h"
#include "dram/dram_types.h"
#include "hmc/hmc_config.h"

namespace hmcsim {

/** Fields of a decoded cube address. */
struct DecodedAddr {
    /** Destination cube (the packet CUB field); 0 without chaining. */
    CubeId cube = 0;
    VaultId vault = 0;
    QuadrantId quadrant = 0;
    std::uint32_t vaultInQuad = 0;
    BankId bank = 0;
    RowId row = 0;
    /** First 32 B beat within the row. */
    ColId col = 0;
    /** Byte offset within the block (informational). */
    std::uint32_t blockOffset = 0;
    /** Byte offset within the 32 B beat; with blocks smaller than a
     *  beat this carries the sub-beat position encode() needs. */
    std::uint32_t beatOffset = 0;
};

/**
 * Mask/fixed-bits pair describing a GUPS-style access pattern:
 * address = (random & mask) | fixed  (the paper's mask/anti-mask).
 */
struct AddressPattern {
    Addr mask = 0;
    Addr fixed = 0;

    /** Apply to a raw random value. */
    Addr apply(Addr random) const { return (random & mask) | fixed; }
};

class AddressMap
{
  public:
    explicit AddressMap(const HmcConfig &cfg);

    DecodedAddr decode(Addr addr) const;

    /** Inverse of decode for trace/test generation. */
    Addr encode(const DecodedAddr &d) const;

    /** Fast path: only the cube (CUB) field of @p addr. */
    CubeId decodeCube(Addr addr) const;

    /** Convenience: build a full DramAccess for a request. */
    DramAccess toAccess(Addr addr, std::uint32_t bytes, bool is_write) const;

    /**
     * Build the mask/fixed pair that confines random addresses to
     * @p num_vaults vaults (starting at @p base_vault) and
     * @p num_banks banks (starting at @p base_bank), with random rows.
     * Both counts must be powers of two within the geometry.
     */
    AddressPattern pattern(std::uint32_t num_vaults, std::uint32_t num_banks,
                           VaultId base_vault = 0,
                           BankId base_bank = 0) const;

    /** Pattern restricted to an explicit single vault, all banks. */
    AddressPattern vaultPattern(VaultId vault) const;

    /** Pattern restricted to one cube (all vaults/banks/rows). */
    AddressPattern cubePattern(CubeId cube) const;

    // Field geometry (bit positions), exposed for tests and tooling.
    // Vault/bank/offset positions are in the per-cube (local) address;
    // under "cube_low" interleave their global positions shift up by
    // cubeBits().
    unsigned offsetBits() const { return offsetBits_; }
    unsigned vaultLow() const { return vaultLow_; }
    unsigned vaultBits() const { return vaultBits_; }
    unsigned bankLow() const { return bankLow_; }
    unsigned bankBits() const { return bankBits_; }
    unsigned addrBits() const { return addrBits_; }
    unsigned cubeBits() const { return cubeBits_; }
    unsigned cubeLow() const { return cubeLow_; }

    std::uint32_t numCubes() const { return numCubes_; }

    /** Per-cube capacity in bytes. */
    std::uint64_t capacity() const { return capacity_; }

    /** Capacity across all cubes in bytes. */
    std::uint64_t totalCapacity() const { return capacity_ << cubeBits_; }

    std::uint32_t blockBytes() const { return blockBytes_; }
    std::uint32_t rowBytes() const { return rowBytes_; }

  private:
    std::uint64_t capacity_;
    std::uint32_t blockBytes_;
    std::uint32_t rowBytes_;
    std::uint32_t numVaults_;
    std::uint32_t numBanks_;
    std::uint32_t vaultsPerQuad_;
    bool vaultFirst_;
    unsigned offsetBits_;
    unsigned vaultBits_;
    unsigned bankBits_;
    unsigned vaultLow_;
    unsigned bankLow_;
    unsigned blockIdxLow_;
    unsigned addrBits_;
    std::uint32_t blocksPerRow_;
    std::uint32_t numCubes_;
    bool cubeLowInterleave_;
    unsigned cubeBits_;
    unsigned cubeLow_;

    /** Split a global address into (cube, per-cube local address). */
    void splitCube(Addr addr, CubeId &cube, Addr &local) const;

    /** Widen a per-cube local value with the cube field inserted. */
    Addr expandLocal(Addr local, Addr cube_field) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_HMC_ADDRESS_MAP_H_
