#include "hmc/vault_controller.h"

#include <algorithm>

#include "common/log.h"
#include "common/units.h"
#include "obs/observability.h"
#include "sim/kernel.h"

namespace hmcsim {

VaultController::VaultController(Kernel &kernel, Component *parent,
                                 std::string name, VaultId vault,
                                 NodeId endpoint, Network &net,
                                 const AddressMap &map,
                                 const DramTimingParams &timing,
                                 std::uint32_t num_banks,
                                 const Params &params)
    : Component(kernel, parent, std::move(name)), vault_(vault),
      endpoint_(endpoint), net_(net), map_(map), params_(params),
      mem_(kernel, this, "mem", timing, num_banks),
      refresh_(params.trefi, num_banks), banks_(num_banks)
{
    if (Observability *o = kernel.obs()) {
        tracer_ = o->fullTracer();
        prof_ = o->profiler();
        obsMetrics_.bind(o->metricsRegistry(), path());
        obsMetrics_.counter("requests_served", &served_);
        obsMetrics_.counter("read_bytes", &readBytes_);
        obsMetrics_.counter("write_bytes", &writeBytes_);
        obsMetrics_.sampler("service_latency_ns", &serviceNs_);
        obsMetrics_.gauge("input_queue_now", [this] {
            return static_cast<double>(inputQ_.size());
        });
        obsMetrics_.gauge("bank_queue_now", [this] {
            return static_cast<double>(bankQOccupancy_);
        });
        obsMetrics_.gauge("resp_queue_flits_now", [this] {
            return static_cast<double>(respUsedFlits_);
        });
    }
}

void
VaultController::setThrottle(double slowdown)
{
    if (slowdown < 1.0)
        panic("VaultController::setThrottle: slowdown below 1.0");
    slowdown_ = slowdown;
}

Tick
VaultController::effectiveRequestCycle() const
{
    if (slowdown_ <= 1.0)
        return params_.requestCycle;
    return static_cast<Tick>(
        static_cast<double>(params_.requestCycle) * slowdown_ + 0.5);
}

bool
VaultController::tryReserveInput(std::uint32_t flits)
{
    if (inputUsedFlits_ + flits > params_.inputQueueFlits)
        return false;
    inputUsedFlits_ += flits;
    return true;
}

void
VaultController::deliverRequest(const NocMessage &msg)
{
    auto pkt = std::static_pointer_cast<HmcPacket>(msg.payload);
    if (!pkt || !pkt->isRequest())
        panic("VaultController: delivered message is not a request");
    pkt->vaultArriveAt = now();
    if (tracer_ && tracer_->wants(*pkt))
        tracer_->record(now(), *pkt, TraceStage::VaultEnqueue, pkt->cube,
                        vault_);
    const Tick ready = now() + params_.frontendLatency;
    inputQ_.emplace_back(ready, pkt);
    kernel().scheduleAt(ready, [this] { processInput(); });
}

void
VaultController::processInput()
{
    ProfileScope ps(prof_, "vault");
    while (!inputQ_.empty()) {
        const auto &[ready, pkt] = inputQ_.front();
        if (ready > now())
            return;  // the event scheduled at `ready` resumes us
        const DecodedAddr d = map_.decode(pkt->addr);
        BankState &bank = banks_[d.bank];
        if (bank.q.size() >= params_.bankQueueDepth)
            return;  // head-of-line block; trySchedule() drains banks
        const std::uint32_t flits = pkt->flits();
        bank.q.push_back(pkt);
        ++bankQOccupancy_;
        peakBankQ_ = std::max(peakBankQ_, bankQOccupancy_);
        inputQ_.pop_front();
        inputUsedFlits_ -= flits;
        net_.kickEject(endpoint_);
        trySchedule(d.bank);
    }
}

std::size_t
VaultController::pickRequest(const BankState &bank) const
{
    if (params_.scheduler == SchedulerKind::Fifo || bank.q.size() <= 1)
        return 0;
    // FR-FCFS: prefer the oldest request hitting the open row.
    const BankId b = static_cast<BankId>(&bank - banks_.data());
    const Bank &dram_bank = mem_.bank(b);
    if (!dram_bank.rowOpen())
        return 0;
    for (std::size_t i = 0; i < bank.q.size(); ++i) {
        const DecodedAddr d = map_.decode(bank.q[i]->addr);
        if (d.row == dram_bank.openRow())
            return i;
    }
    return 0;
}

void
VaultController::tryScheduleAll()
{
    // Rotate the starting bank so saturated vaults serve banks fairly.
    // The base must be a snapshot: trySchedule() advances
    // lastPlannedBank_ when it plans, and deriving indices from the
    // live value would skip banks (and strand their queued requests).
    const std::uint32_t n = static_cast<std::uint32_t>(banks_.size());
    const std::uint32_t base = lastPlannedBank_;
    for (std::uint32_t i = 1; i <= n; ++i)
        trySchedule((base + i) % n);
}

void
VaultController::trySchedule(BankId b)
{
    BankState &bank = banks_[b];
    if (bank.busy || bank.q.empty())
        return;

    // The scheduler pipeline plans at most one request per
    // requestCycle across all banks of this vault.
    if (now() < nextPlanAllowed_) {
        if (!planRetryPending_) {
            planRetryPending_ = true;
            kernel().scheduleAt(nextPlanAllowed_, [this] {
                planRetryPending_ = false;
                tryScheduleAll();
                processInput();
            });
        }
        return;
    }

    const std::size_t idx = pickRequest(bank);
    const HmcPacketPtr pkt = bank.q[idx];

    // Response-queue admission: reserve the reply's flits up front so a
    // full response path backpressures into DRAM scheduling instead of
    // overflowing.
    const std::uint32_t resp_flits =
        HmcPacket::flitsFor(pkt->cmd == HmcCmd::Read ? HmcCmd::ReadResponse
                                                     : HmcCmd::WriteResponse,
                            pkt->dataBytes);
    if (respUsedFlits_ + respReservedFlits_ + resp_flits >
        params_.responseQueueFlits) {
        bank.waitingForResponseSpace = true;
        return;  // retried when a response drains
    }
    bank.waitingForResponseSpace = false;
    respReservedFlits_ += resp_flits;

    bank.q.erase(bank.q.begin() + static_cast<std::ptrdiff_t>(idx));
    --bankQOccupancy_;
    bank.busy = true;
    pkt->dramStartAt = now();
    nextPlanAllowed_ = now() + effectiveRequestCycle();
    lastPlannedBank_ = b;

    // Refresh-before-access if this bank owes one.
    if (refresh_.due(b, now())) {
        const Tick done = mem_.refreshBank(b, now());
        refresh_.completed(b, done);
    }

    const DramAccess access =
        map_.toAccess(pkt->addr, pkt->dataBytes, pkt->cmd == HmcCmd::Write);
    const VaultMemory::ServiceResult res =
        mem_.service(access, now(), params_.pagePolicy);
    pkt->dataReadyAt = res.dataEnd;

    // The bank's command sequence is committed at the column command;
    // the next request for this bank may be planned from then on (its
    // own timing constraints keep it legal).
    kernel().scheduleAt(std::max(now(), res.colTime), [this, b] {
        banks_[b].busy = false;
        trySchedule(b);
        processInput();
    });

    const Tick jitter =
        params_.jitterPerFlit * ((pkt->dataBytes + kFlitBytes - 1) /
                                 kFlitBytes);
    kernel().scheduleAt(res.dataEnd + params_.backendLatency + jitter,
                        [this, pkt] { finishRequest(pkt); });
}

void
VaultController::finishRequest(const HmcPacketPtr &pkt)
{
    ProfileScope ps(prof_, "vault");
    if (tracer_ && tracer_->wants(*pkt))
        tracer_->record(now(), *pkt, TraceStage::DramDone, pkt->cube,
                        vault_);
    served_.inc();
    if (pkt->cmd == HmcCmd::Read)
        readBytes_.inc(pkt->dataBytes);
    else
        writeBytes_.inc(pkt->dataBytes);

    auto resp = pkt->makeResponsePtr();
    const std::uint32_t flits = resp->flits();
    respReservedFlits_ -= flits;
    respUsedFlits_ += flits;
    respQ_.push_back(resp);
    tryInjectResponses();
}

void
VaultController::tryInjectResponses()
{
    bool drained = false;
    while (!respQ_.empty()) {
        const HmcPacketPtr &resp = respQ_.front();
        const std::uint32_t flits = resp->flits();
        if (!net_.canInject(endpoint_, flits))
            break;
        resp->respInjectAt = now();
        serviceNs_.add(ticksToNs(now() - resp->vaultArriveAt));
        if (tracer_ && tracer_->wants(*resp))
            tracer_->record(now(), *resp, TraceStage::RespInject,
                            resp->cube, vault_);
        NocMessage msg;
        msg.id = resp->id;
        msg.src = endpoint_;
        msg.dst = resp->link;  // link endpoints are ids [0, numLinks)
        msg.flits = flits;
        msg.payload = resp;
        net_.inject(endpoint_, std::move(msg));
        respQ_.pop_front();
        respUsedFlits_ -= flits;
        drained = true;
    }
    if (drained) {
        // Freed response space can unblock bank scheduling.  Use the
        // rotating scan: retrying waiting banks in ascending order
        // would hand every freed slot to the lowest bank ids and
        // starve the high ones under sustained response pressure.
        tryScheduleAll();
    }
}

void
VaultController::onInjectSpace()
{
    tryInjectResponses();
}

void
VaultController::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("requests_served")] =
        static_cast<double>(served_.value());
    out[statName("read_bytes")] = static_cast<double>(readBytes_.value());
    out[statName("write_bytes")] = static_cast<double>(writeBytes_.value());
    out[statName("avg_service_ns")] = serviceNs_.mean();
    out[statName("peak_bank_queue")] = static_cast<double>(peakBankQ_);
    // Live occupancies (diagnosing stalls, not windowed statistics).
    out[statName("input_queue_now")] =
        static_cast<double>(inputQ_.size());
    out[statName("bank_queue_now")] =
        static_cast<double>(bankQOccupancy_);
    out[statName("resp_queue_flits_now")] =
        static_cast<double>(respUsedFlits_);
    out[statName("resp_reserved_flits_now")] =
        static_cast<double>(respReservedFlits_);
}

void
VaultController::resetOwnStats()
{
    served_.reset();
    readBytes_.reset();
    writeBytes_.reset();
    serviceNs_.reset();
    peakBankQ_ = bankQOccupancy_;
}

}  // namespace hmcsim
