/**
 * @file
 * Recycled HmcPacket allocation.
 *
 * Every transaction allocates at least two HmcPackets (request and
 * response) each living in a shared_ptr control block -- at current
 * simulation rates that is ~10^6 malloc/free pairs per wall second,
 * the single largest engine cost after event scheduling.  The pool
 * routes those allocations through std::allocate_shared with a
 * freelist-backed allocator, so packet + control block live in one
 * recycled block and steady-state packet churn never touches the
 * system allocator.
 *
 * The pool is sharded per thread: every acquire/release touches only
 * the calling thread's freelists (no locks on the hot path), which is
 * what makes it safe under the partitioned-parallel event core --
 * each worker churns its partitions' packets through its own bins,
 * and a packet freed on a different thread than it was allocated on
 * simply migrates between bins (the per-thread live counts are signed
 * for exactly this reason; only their sum is meaningful).  The only
 * locked surface is the registry of per-thread pools plus the orphan
 * bins that adopt a dying thread's freelists, touched at thread
 * birth/death, on a local freelist miss, and by the stats accessors
 * below (which expect the quiescence the core's barriers provide).
 * Freed blocks are kept on an intrusive freelist inside the block
 * memory itself and reused LIFO for cache warmth.
 *
 * Whether a given packet came from the pool is captured in its
 * control block at allocation time, so toggling the pool while
 * packets are in flight is safe: every block is returned the same way
 * it was obtained.  sim.packet_pool=false restores plain operator new
 * for differential testing (bit-identical by construction -- the pool
 * changes only where bytes live, never any field value).
 */

#ifndef HMCSIM_HMC_PACKET_POOL_H_
#define HMCSIM_HMC_PACKET_POOL_H_

#include <cstddef>

namespace hmcsim {

/** Enable/disable recycling for *future* allocations. */
void setPacketPoolEnabled(bool enabled);
bool packetPoolEnabled();

/** Blocks currently resting on the freelist (tests/diagnostics). */
std::size_t packetPoolFreeBlocks();

/** Pool blocks currently alive in shared_ptrs (tests/diagnostics). */
std::size_t packetPoolLiveBlocks();

/** Grab a recycled block of @p size bytes (or carve a fresh one). */
void *packetPoolAcquire(std::size_t size, std::size_t align);

/** Return a block obtained from packetPoolAcquire to the freelist. */
void packetPoolRelease(void *p, std::size_t size);

/**
 * Stateless-per-type allocator whose pooling decision is frozen at
 * construction.  std::allocate_shared copies it into the control
 * block, which is what makes in-flight toggling safe.
 */
template <typename T>
struct PacketPoolAllocator {
    using value_type = T;

    bool pooled;

    PacketPoolAllocator() : pooled(packetPoolEnabled()) {}
    template <typename U>
    PacketPoolAllocator(const PacketPoolAllocator<U> &o) : pooled(o.pooled)
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n == 1 && pooled) {
            return static_cast<T *>(
                packetPoolAcquire(sizeof(T), alignof(T)));
        }
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        if (n == 1 && pooled) {
            packetPoolRelease(p, sizeof(T));
            return;
        }
        ::operator delete(p);
    }

    template <typename U>
    bool
    operator==(const PacketPoolAllocator<U> &o) const
    {
        return pooled == o.pooled;
    }
    template <typename U>
    bool
    operator!=(const PacketPoolAllocator<U> &o) const
    {
        return !(*this == o);
    }
};

}  // namespace hmcsim

#endif  // HMCSIM_HMC_PACKET_POOL_H_
