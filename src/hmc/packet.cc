#include "hmc/packet.h"

#include <atomic>

#include "common/log.h"
#include "hmc/packet_pool.h"

namespace hmcsim {

namespace {

std::atomic<PacketId> g_next_packet_id{1};

PacketId
nextPacketId()
{
    return g_next_packet_id.fetch_add(1, std::memory_order_relaxed);
}

/** Packet + shared_ptr control block in one (recycled) allocation. */
template <typename... Args>
HmcPacketPtr
allocPacket(Args &&...args)
{
    return std::allocate_shared<HmcPacket>(PacketPoolAllocator<HmcPacket>{},
                                           std::forward<Args>(args)...);
}

}  // namespace

std::string
toString(HmcCmd cmd)
{
    switch (cmd) {
      case HmcCmd::Read: return "READ";
      case HmcCmd::Write: return "WRITE";
      case HmcCmd::ReadResponse: return "RD_RS";
      case HmcCmd::WriteResponse: return "WR_RS";
      case HmcCmd::Flow: return "FLOW";
    }
    return "?";
}

void
validateDataBytes(std::uint32_t data_bytes)
{
    if (data_bytes < 16 || data_bytes > 128)
        fatal("packet payload must be 16..128 bytes (got " +
              std::to_string(data_bytes) + ")");
}

HmcPacket
HmcPacket::makeResponse() const
{
    if (!isRequest())
        panic("HmcPacket::makeResponse on a non-request packet");
    HmcPacket r;
    r.id = nextPacketId();
    r.cmd = cmd == HmcCmd::Read ? HmcCmd::ReadResponse
                                : HmcCmd::WriteResponse;
    r.addr = addr;
    r.tag = tag;
    r.port = port;
    r.link = link;
    r.dataBytes = dataBytes;
    r.vault = vault;
    r.cube = cube;
    r.host = host;
    r.reqHops = reqHops;
    r.createdAt = createdAt;
    r.linkTxAt = linkTxAt;
    r.chainIngressAt = chainIngressAt;
    r.cubeArriveAt = cubeArriveAt;
    r.vaultArriveAt = vaultArriveAt;
    r.dramStartAt = dramStartAt;
    r.dataReadyAt = dataReadyAt;
    r.traceId = traceId != 0 ? traceId : id;
    return r;
}

HmcPacketPtr
HmcPacket::makeResponsePtr() const
{
    return allocPacket(makeResponse());
}

HmcPacketPtr
makeReadRequest(Addr addr, std::uint32_t data_bytes, PortId port)
{
    validateDataBytes(data_bytes);
    auto p = allocPacket();
    p->id = nextPacketId();
    p->cmd = HmcCmd::Read;
    p->addr = addr;
    p->dataBytes = data_bytes;
    p->port = port;
    return p;
}

HmcPacketPtr
makeWriteRequest(Addr addr, std::uint32_t data_bytes, PortId port)
{
    validateDataBytes(data_bytes);
    auto p = allocPacket();
    p->id = nextPacketId();
    p->cmd = HmcCmd::Write;
    p->addr = addr;
    p->dataBytes = data_bytes;
    p->port = port;
    return p;
}

}  // namespace hmcsim
