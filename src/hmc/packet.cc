#include "hmc/packet.h"

#include <atomic>

#include "common/log.h"

namespace hmcsim {

namespace {

std::atomic<PacketId> g_next_packet_id{1};

PacketId
nextPacketId()
{
    return g_next_packet_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string
toString(HmcCmd cmd)
{
    switch (cmd) {
      case HmcCmd::Read: return "READ";
      case HmcCmd::Write: return "WRITE";
      case HmcCmd::ReadResponse: return "RD_RS";
      case HmcCmd::WriteResponse: return "WR_RS";
      case HmcCmd::Flow: return "FLOW";
    }
    return "?";
}

void
validateDataBytes(std::uint32_t data_bytes)
{
    if (data_bytes < 16 || data_bytes > 128)
        fatal("packet payload must be 16..128 bytes (got " +
              std::to_string(data_bytes) + ")");
}

std::uint32_t
HmcPacket::dataFlits() const
{
    switch (cmd) {
      case HmcCmd::Write:
      case HmcCmd::ReadResponse:
        return (dataBytes + kFlitBytes - 1) / kFlitBytes;
      case HmcCmd::Read:
      case HmcCmd::WriteResponse:
      case HmcCmd::Flow:
        return 0;
    }
    return 0;
}

std::uint32_t
HmcPacket::flitsFor(HmcCmd cmd, std::uint32_t data_bytes)
{
    HmcPacket tmp;
    tmp.cmd = cmd;
    tmp.dataBytes = data_bytes;
    return 1 + tmp.dataFlits();
}

HmcPacket
HmcPacket::makeResponse() const
{
    if (!isRequest())
        panic("HmcPacket::makeResponse on a non-request packet");
    HmcPacket r;
    r.id = nextPacketId();
    r.cmd = cmd == HmcCmd::Read ? HmcCmd::ReadResponse
                                : HmcCmd::WriteResponse;
    r.addr = addr;
    r.tag = tag;
    r.port = port;
    r.link = link;
    r.dataBytes = dataBytes;
    r.vault = vault;
    r.cube = cube;
    r.host = host;
    r.reqHops = reqHops;
    r.createdAt = createdAt;
    r.linkTxAt = linkTxAt;
    r.chainIngressAt = chainIngressAt;
    r.cubeArriveAt = cubeArriveAt;
    r.vaultArriveAt = vaultArriveAt;
    r.dramStartAt = dramStartAt;
    r.dataReadyAt = dataReadyAt;
    r.traceId = traceId != 0 ? traceId : id;
    return r;
}

HmcPacketPtr
makeReadRequest(Addr addr, std::uint32_t data_bytes, PortId port)
{
    validateDataBytes(data_bytes);
    auto p = std::make_shared<HmcPacket>();
    p->id = nextPacketId();
    p->cmd = HmcCmd::Read;
    p->addr = addr;
    p->dataBytes = data_bytes;
    p->port = port;
    return p;
}

HmcPacketPtr
makeWriteRequest(Addr addr, std::uint32_t data_bytes, PortId port)
{
    validateDataBytes(data_bytes);
    auto p = std::make_shared<HmcPacket>();
    p->id = nextPacketId();
    p->cmd = HmcCmd::Write;
    p->addr = addr;
    p->dataBytes = data_bytes;
    p->port = port;
    return p;
}

}  // namespace hmcsim
