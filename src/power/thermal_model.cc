#include "power/thermal_model.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace hmcsim {

ThermalModel::ThermalModel(const ThermalParams &params)
    : params_(params),
      temps_(1 + params.numDramLayers, params.ambientC)
{
}

double
ThermalModel::temperatureC(std::size_t layer) const
{
    if (layer >= temps_.size())
        panic("ThermalModel::temperatureC: layer out of range");
    return temps_[layer];
}

double
ThermalModel::maxTemperatureC() const
{
    return *std::max_element(temps_.begin(), temps_.end());
}

void
ThermalModel::eulerStep(const std::vector<double> &layer_power_w,
                        double dt_sec)
{
    const std::size_t n = temps_.size();
    const double r = params_.layerResistanceKperW;
    const double c = params_.layerCapacitanceJperK;
    std::vector<double> next(n);
    for (std::size_t i = 0; i < n; ++i) {
        double flow_w = layer_power_w[i];
        if (i > 0)
            flow_w += (temps_[i - 1] - temps_[i]) / r;
        if (i + 1 < n)
            flow_w += (temps_[i + 1] - temps_[i]) / r;
        else  // top layer couples to the heat sink
            flow_w += (params_.ambientC - temps_[i]) /
                params_.sinkResistanceKperW;
        next[i] = temps_[i] + flow_w * dt_sec / c;
    }
    temps_ = std::move(next);
}

void
ThermalModel::step(const std::vector<double> &layer_power_w, double dt_sec)
{
    if (layer_power_w.size() != temps_.size())
        panic("ThermalModel::step: power vector size mismatch");
    if (dt_sec <= 0.0)
        return;
    // Explicit Euler is stable for dt < R*C/2 on this chain; substep
    // so one coarse simulation-driven step cannot diverge.
    const double r_min = std::min(params_.layerResistanceKperW,
                                  params_.sinkResistanceKperW);
    const double dt_max = 0.25 * r_min * params_.layerCapacitanceJperK;
    const auto substeps = static_cast<std::uint64_t>(
        std::ceil(dt_sec / dt_max));
    const double dt = dt_sec / static_cast<double>(substeps);
    for (std::uint64_t s = 0; s < substeps; ++s)
        eulerStep(layer_power_w, dt);
}

std::vector<double>
ThermalModel::steadyStateC(const std::vector<double> &layer_power_w) const
{
    if (layer_power_w.size() != temps_.size())
        panic("ThermalModel::steadyStateC: power vector size mismatch");
    const std::size_t n = temps_.size();
    double total_w = 0.0;
    for (double p : layer_power_w)
        total_w += p;

    std::vector<double> t(n);
    // Top layer sits across the sink resistance from ambient.
    t[n - 1] = params_.ambientC + total_w * params_.sinkResistanceKperW;
    // Walking down, the flow through the resistor between i and i+1 is
    // the power injected at or below layer i.
    double below_w = total_w;
    for (std::size_t i = n - 1; i-- > 0;) {
        below_w -= layer_power_w[i + 1];
        t[i] = t[i + 1] + below_w * params_.layerResistanceKperW;
    }
    return t;
}

void
ThermalModel::reset()
{
    std::fill(temps_.begin(), temps_.end(), params_.ambientC);
}

}  // namespace hmcsim
