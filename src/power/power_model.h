/**
 * @file
 * PowerModel: the component that ties the power subsystem together.
 *
 * It is the single PowerProbe every instrumented component reports
 * into, owns the EnergyModel / ThermalModel / ThrottleGovernor, and --
 * once start()ed -- steps periodically: interval energy is converted
 * into per-layer power, the RC stack is advanced, and the governor's
 * slowdown factor is pushed to the device through the throttle
 * applier callback (vault schedulers + SerDes links).
 *
 * Stepping is started by System, not by the device constructor, so
 * device-only unit tests keep a drainable event queue.
 */

#ifndef HMCSIM_POWER_POWER_MODEL_H_
#define HMCSIM_POWER_POWER_MODEL_H_

#include <functional>

#include "obs/metrics.h"
#include "power/energy_model.h"
#include "power/power_config.h"
#include "power/throttle_governor.h"
#include "power/thermal_model.h"
#include "sim/component.h"

namespace hmcsim {

class PowerModel : public Component, public PowerProbe
{
  public:
    PowerModel(Kernel &kernel, Component *parent, std::string name,
               const PowerConfig &cfg);

    // ----- PowerProbe -----
    void record(PowerEvent ev, std::uint64_t count) override;
    void recordAtLayer(PowerEvent ev, std::uint64_t count,
                       std::uint32_t dram_layer) override;

    /**
     * Register the callback that applies a slowdown factor to the
     * device's timing (vault controllers, links).
     */
    void setThrottleApplier(std::function<void(double)> fn);

    /** Begin periodic thermal/governor stepping; idempotent. */
    void start();

    /**
     * One evaluation covering [last step, now]: accumulate interval
     * energy into layer power, advance the RC stack, run the governor,
     * and apply any throttle change.  Public so tests can drive the
     * loop without the periodic event.
     */
    void step();

    const PowerConfig &config() const { return cfg_; }
    const EnergyModel &energy() const { return energy_; }
    const ThermalModel &thermal() const { return thermal_; }
    const ThrottleGovernor &governor() const { return governor_; }

    /** Current timing stretch factor (1.0 = unthrottled). */
    double slowdown() const { return governor_.slowdown(); }

    /** Total energy since the last stats reset, pJ. */
    double windowEnergyPj() const;

    /** Fraction of the stats window spent throttled, in [0, 1]. */
    double throttledFraction() const;

    /** Average total power over the stats window, W. */
    double avgPowerW() const;

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

  private:
    PowerConfig cfg_;
    EnergyModel energy_;
    ThermalModel thermal_;
    ThrottleGovernor governor_;
    std::function<void(double)> applyThrottle_;
    bool started_ = false;
    MetricSet obsMetrics_;

    Tick lastStepAt_ = 0;
    double lastDramPj_ = 0.0;
    double lastLogicPj_ = 0.0;
    std::vector<double> lastLayerPj_;

    // Stats-window bases (reset by resetOwnStats).
    Tick windowStartAt_ = 0;
    double windowBaseDynamicPj_ = 0.0;
    Tick throttledTicks_ = 0;

    void scheduleNext();
};

}  // namespace hmcsim

#endif  // HMCSIM_POWER_POWER_MODEL_H_
