/**
 * @file
 * Lumped-RC thermal model of the 3D stack.
 *
 * Layer 0 is the logic layer at the bottom of the cube; layers
 * 1..numDramLayers are DRAM dies above it; the heat sink sits on top
 * of the stack and is held at ambient.  Heat therefore flows upward
 * through every DRAM die, which makes the logic layer the hottest node
 * under load -- the well-known HMC thermal profile the paper's
 * sustained-bandwidth observations reflect.
 *
 * Each layer is one thermal node with capacitance C to its own
 * temperature state and resistance R to its vertical neighbours:
 *
 *   C * dT_i/dt = P_i + (T_{i-1} - T_i)/R + (T_{i+1} - T_i)/R
 *
 * stepped with explicit Euler, substepped to stay well inside the
 * stability bound dt < R*C/2.
 */

#ifndef HMCSIM_POWER_THERMAL_MODEL_H_
#define HMCSIM_POWER_THERMAL_MODEL_H_

#include <cstdint>
#include <vector>

#include "power/power_config.h"

namespace hmcsim {

class ThermalModel
{
  public:
    explicit ThermalModel(const ThermalParams &params);

    /** Total nodes: one logic layer + numDramLayers DRAM layers. */
    std::size_t numLayers() const { return temps_.size(); }

    /** Current temperature of @p layer (0 = logic), Celsius. */
    double temperatureC(std::size_t layer) const;

    /** Hottest layer right now, Celsius. */
    double maxTemperatureC() const;

    /**
     * Advance the stack by @p dt_sec seconds with @p layer_power_w
     * watts dissipated per layer (index 0 = logic layer).
     */
    void step(const std::vector<double> &layer_power_w, double dt_sec);

    /**
     * Analytic steady-state temperatures for constant per-layer power:
     * all heat exits through the sink above the top layer, so the flow
     * through the resistor above layer i is the sum of the powers of
     * layers 0..i.  Used by tests to check step() convergence.
     */
    std::vector<double>
    steadyStateC(const std::vector<double> &layer_power_w) const;

    /** Reset every layer to ambient. */
    void reset();

    const ThermalParams &params() const { return params_; }

  private:
    ThermalParams params_;
    std::vector<double> temps_;

    void eulerStep(const std::vector<double> &layer_power_w,
                   double dt_sec);
};

}  // namespace hmcsim

#endif  // HMCSIM_POWER_THERMAL_MODEL_H_
