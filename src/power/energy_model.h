/**
 * @file
 * Event-driven energy accounting.  Instrumented components report raw
 * event counts through the PowerProbe interface; this model converts
 * them into picojoules with the configured per-event energies and
 * splits the total into the groups the thermal stack needs (logic
 * layer vs. DRAM layers).  Static power is accounted separately as a
 * function of elapsed simulated time.
 */

#ifndef HMCSIM_POWER_ENERGY_MODEL_H_
#define HMCSIM_POWER_ENERGY_MODEL_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "power/power_config.h"
#include "power/power_probe.h"

namespace hmcsim {

class EnergyModel : public PowerProbe
{
  public:
    /**
     * @param num_dram_layers layers the bank -> layer attribution can
     *        target (recordAtLayer clamps to this)
     */
    explicit EnergyModel(const EnergyParams &params,
                         std::uint32_t num_dram_layers = 1);

    // ----- PowerProbe -----
    void record(PowerEvent ev, std::uint64_t count) override;
    void recordAtLayer(PowerEvent ev, std::uint64_t count,
                       std::uint32_t dram_layer) override;

    /** Events of class @p ev seen since construction (never reset). */
    std::uint64_t eventCount(PowerEvent ev) const;

    /** Cumulative dynamic energy of one event class, pJ. */
    double dynamicPj(PowerEvent ev) const;

    /** Cumulative dynamic energy over all event classes, pJ. */
    double totalDynamicPj() const;

    /**
     * Cumulative dynamic energy dissipated in the DRAM stack (bank
     * operations plus TSV transfers), pJ.
     */
    double dramDynamicPj() const;

    /** Cumulative dynamic energy in the logic layer (NoC + SerDes), pJ. */
    double logicDynamicPj() const;

    /**
     * Cumulative DRAM energy attributed to one layer via
     * recordAtLayer(), pJ.  Energy recorded without layer information
     * (e.g. TSV beats) is not included; the thermal step spreads that
     * remainder evenly.
     */
    double dramLayerAttributedPj(std::uint32_t layer) const;

    /** Sum of the per-layer attributed energies, pJ. */
    double dramAttributedPj() const;

    std::uint32_t numDramLayers() const
    {
        return static_cast<std::uint32_t>(layerPj_.size());
    }

    /** Static power burned in the logic layer (SerDes + logic), W. */
    double logicStaticW() const;

    /** Static power per DRAM layer, W. */
    double dramStaticWPerLayer() const;

    /** Total static power for @p num_dram_layers layers, W. */
    double totalStaticW(std::uint32_t num_dram_layers) const;

    /**
     * Total (dynamic + static) energy over a window of @p elapsed
     * ticks ending now, relative to dynamic baseline @p dynamic_base_pj.
     */
    double windowEnergyPj(double dynamic_base_pj, Tick elapsed,
                          std::uint32_t num_dram_layers) const;

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
    std::array<std::uint64_t, kNumPowerEvents> counts_{};
    std::array<double, kNumPowerEvents> energyPj_{};
    std::vector<double> layerPj_;

    double perEventPj(PowerEvent ev) const;
};

/** pJ of static energy for @p watts sustained over @p ticks. */
double staticEnergyPj(double watts, Tick ticks);

}  // namespace hmcsim

#endif  // HMCSIM_POWER_ENERGY_MODEL_H_
