/**
 * @file
 * Configuration of the power/thermal subsystem: per-event energies,
 * static power, the lumped-RC thermal stack, and the throttle governor.
 *
 * Defaults are representative of HMC 1.1 figures (DRAM access energy
 * ~3.7 pJ/bit, SerDes-dominated static power) and land at roughly 7 W
 * idle / 13 W saturated for the paper's AC-510 cube.  The model is
 * observation-only by default: energy and temperature are tracked and
 * reported but `throttle.enabled` is off, so timing is bit-identical
 * to a build without the power subsystem.
 */

#ifndef HMCSIM_POWER_POWER_CONFIG_H_
#define HMCSIM_POWER_POWER_CONFIG_H_

#include <cstdint>

#include "common/config.h"
#include "common/types.h"

namespace hmcsim {

/** Dynamic energy per event (picojoules) and static power (watts). */
struct EnergyParams {
    // ----- dynamic, pJ per event -----
    double dramActivatePj = 909.0;
    double dramPrechargePj = 600.0;
    double dramReadBeatPj = 947.0;   ///< per 32 B beat (~3.7 pJ/bit)
    double dramWriteBeatPj = 947.0;
    double dramRefreshPj = 3900.0;   ///< per per-bank refresh
    double tsvBeatPj = 166.0;        ///< 32 B crossing the TSV stack
    double nocFlitHopPj = 26.0;      ///< 16 B flit through one router
    double serdesFlitPj = 640.0;     ///< 16 B flit onto a link (~5 pJ/bit)
    double chainForwardFlitPj = 120.0;  ///< 16 B flit through a chain switch

    // ----- static, watts -----
    /** All SerDes lanes combined; lanes burn power data or not. */
    double serdesIdleW = 2.4;
    /** Logic layer background (NoC, vault controllers, PHY digital). */
    double logicIdleW = 3.0;
    /** Per-DRAM-layer background (peripheral + self-refresh floor). */
    double dramIdleWPerLayer = 0.4;
};

/** Lumped-RC thermal stack parameters. */
struct ThermalParams {
    /** DRAM dies stacked above the logic layer. */
    std::uint32_t numDramLayers = 4;

    /** Ambient / heat-sink reference temperature. */
    double ambientC = 45.0;

    /** Vertical resistance between adjacent layers, K/W. */
    double layerResistanceKperW = 0.35;

    /** Top DRAM layer to heat sink/ambient, K/W. */
    double sinkResistanceKperW = 0.9;

    /**
     * Per-layer thermal capacitance, J/K.  The physical value for a
     * thinned HMC die is ~5 mJ/K; the default is deliberately smaller
     * so thermal transients settle within microsecond-scale simulation
     * windows (time constants scale linearly with this knob).
     */
    double layerCapacitanceJperK = 2e-3;
};

/** Temperature-feedback throttling policy (hysteretic level stepping). */
struct ThrottleParams {
    /** Master switch; off = observation-only power model. */
    bool enabled = false;

    /** Engage/step-up when the hottest layer exceeds this. */
    double onThresholdC = 95.0;

    /** Step-down only when the hottest layer falls below this. */
    double offThresholdC = 85.0;

    /** Discrete throttle depth steps. */
    std::uint32_t numLevels = 8;

    /** Timing stretch factor at the deepest level (1.0 = none). */
    double maxSlowdown = 4.0;
};

struct PowerConfig {
    /** Build and run the power/thermal model at all. */
    bool enabled = true;

    /** Thermal/governor evaluation period. */
    Tick stepInterval = 5 * kMicrosecond;

    EnergyParams energy;
    ThermalParams thermal;
    ThrottleParams throttle;

    /** Raise fatal() on inconsistent settings. */
    void validate() const;

    /** Read every "hmc.power_*" key from @p cfg over the defaults. */
    static PowerConfig fromConfig(const Config &cfg);

    /** Write all values into @p cfg under "hmc.power_*". */
    void toConfig(Config &cfg) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_POWER_POWER_CONFIG_H_
