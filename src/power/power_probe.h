/**
 * @file
 * Instrumentation contract between timing components and the power
 * subsystem.  Components report *events* (an ACTIVATE happened, a flit
 * crossed a router); converting events into picojoules is entirely the
 * energy model's business, so the hot paths never touch floating-point
 * energy parameters and a null probe costs one pointer test.
 */

#ifndef HMCSIM_POWER_POWER_PROBE_H_
#define HMCSIM_POWER_POWER_PROBE_H_

#include <cstdint>

namespace hmcsim {

/** Energy-bearing event classes reported by instrumented components. */
enum class PowerEvent : unsigned {
    /** DRAM row activation (one per ACT command). */
    DramActivate = 0,
    /** DRAM precharge. */
    DramPrecharge,
    /** One 32 B read data beat out of a bank. */
    DramReadBeat,
    /** One 32 B write data beat into a bank. */
    DramWriteBeat,
    /** One per-bank refresh. */
    DramRefresh,
    /** One 32 B beat crossing a vault's TSV data bus. */
    TsvBeat,
    /** One 16 B flit traversing one NoC router. */
    NocFlitHop,
    /** One 16 B flit serialized onto an external SerDes link. */
    SerdesFlit,
    /** One 16 B flit pass-through-forwarded by a chain switch (the
     *  transit cube's buffering + retransmit logic). */
    ChainForwardFlit,

    kCount,
};

constexpr std::size_t kNumPowerEvents =
    static_cast<std::size_t>(PowerEvent::kCount);

/**
 * Sink for power events.  Instrumented components hold a nullable
 * pointer to one of these; the device wires every probe to the single
 * PowerModel when the power subsystem is enabled.
 */
class PowerProbe
{
  public:
    virtual ~PowerProbe() = default;

    /** Report @p count occurrences of @p ev at the current time. */
    virtual void record(PowerEvent ev, std::uint64_t count) = 0;

    /**
     * Layer-attributed variant for DRAM events: @p dram_layer is the
     * die (0 = lowest DRAM layer above the logic die) the energy is
     * dissipated in, so the thermal model can see vertical gradients.
     * Probes that do not track layers fall back to the aggregate.
     */
    virtual void
    recordAtLayer(PowerEvent ev, std::uint64_t count,
                  std::uint32_t dram_layer)
    {
        (void)dram_layer;
        record(ev, count);
    }
};

}  // namespace hmcsim

#endif  // HMCSIM_POWER_POWER_PROBE_H_
