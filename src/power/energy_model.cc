#include "power/energy_model.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

double
staticEnergyPj(double watts, Tick ticks)
{
    // 1 W = 1 J/s = 1 pJ/ps, and a tick is one picosecond.
    return watts * static_cast<double>(ticks);
}

EnergyModel::EnergyModel(const EnergyParams &params,
                         std::uint32_t num_dram_layers)
    : params_(params),
      layerPj_(num_dram_layers == 0 ? 1 : num_dram_layers, 0.0)
{
}

double
EnergyModel::perEventPj(PowerEvent ev) const
{
    switch (ev) {
      case PowerEvent::DramActivate: return params_.dramActivatePj;
      case PowerEvent::DramPrecharge: return params_.dramPrechargePj;
      case PowerEvent::DramReadBeat: return params_.dramReadBeatPj;
      case PowerEvent::DramWriteBeat: return params_.dramWriteBeatPj;
      case PowerEvent::DramRefresh: return params_.dramRefreshPj;
      case PowerEvent::TsvBeat: return params_.tsvBeatPj;
      case PowerEvent::NocFlitHop: return params_.nocFlitHopPj;
      case PowerEvent::SerdesFlit: return params_.serdesFlitPj;
      case PowerEvent::ChainForwardFlit:
        return params_.chainForwardFlitPj;
      case PowerEvent::kCount:
        break;
    }
    panic("EnergyModel: invalid power event");
}

void
EnergyModel::record(PowerEvent ev, std::uint64_t count)
{
    const auto i = static_cast<std::size_t>(ev);
    if (i >= kNumPowerEvents)
        panic("EnergyModel::record: invalid power event");
    counts_[i] += count;
    energyPj_[i] += perEventPj(ev) * static_cast<double>(count);
}

void
EnergyModel::recordAtLayer(PowerEvent ev, std::uint64_t count,
                           std::uint32_t dram_layer)
{
    record(ev, count);
    const std::size_t layer =
        std::min<std::size_t>(dram_layer, layerPj_.size() - 1);
    layerPj_[layer] += perEventPj(ev) * static_cast<double>(count);
}

std::uint64_t
EnergyModel::eventCount(PowerEvent ev) const
{
    return counts_[static_cast<std::size_t>(ev)];
}

double
EnergyModel::dynamicPj(PowerEvent ev) const
{
    return energyPj_[static_cast<std::size_t>(ev)];
}

double
EnergyModel::totalDynamicPj() const
{
    double total = 0.0;
    for (double e : energyPj_)
        total += e;
    return total;
}

double
EnergyModel::dramDynamicPj() const
{
    return dynamicPj(PowerEvent::DramActivate) +
        dynamicPj(PowerEvent::DramPrecharge) +
        dynamicPj(PowerEvent::DramReadBeat) +
        dynamicPj(PowerEvent::DramWriteBeat) +
        dynamicPj(PowerEvent::DramRefresh) +
        dynamicPj(PowerEvent::TsvBeat);
}

double
EnergyModel::logicDynamicPj() const
{
    return dynamicPj(PowerEvent::NocFlitHop) +
        dynamicPj(PowerEvent::SerdesFlit) +
        dynamicPj(PowerEvent::ChainForwardFlit);
}

double
EnergyModel::dramLayerAttributedPj(std::uint32_t layer) const
{
    if (layer >= layerPj_.size())
        panic("EnergyModel: DRAM layer out of range");
    return layerPj_[layer];
}

double
EnergyModel::dramAttributedPj() const
{
    double total = 0.0;
    for (double e : layerPj_)
        total += e;
    return total;
}

double
EnergyModel::logicStaticW() const
{
    return params_.serdesIdleW + params_.logicIdleW;
}

double
EnergyModel::dramStaticWPerLayer() const
{
    return params_.dramIdleWPerLayer;
}

double
EnergyModel::totalStaticW(std::uint32_t num_dram_layers) const
{
    return logicStaticW() + dramStaticWPerLayer() * num_dram_layers;
}

double
EnergyModel::windowEnergyPj(double dynamic_base_pj, Tick elapsed,
                            std::uint32_t num_dram_layers) const
{
    return totalDynamicPj() - dynamic_base_pj +
        staticEnergyPj(totalStaticW(num_dram_layers), elapsed);
}

}  // namespace hmcsim
