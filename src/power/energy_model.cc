#include "power/energy_model.h"

#include "common/log.h"

namespace hmcsim {

double
staticEnergyPj(double watts, Tick ticks)
{
    // 1 W = 1 J/s = 1 pJ/ps, and a tick is one picosecond.
    return watts * static_cast<double>(ticks);
}

EnergyModel::EnergyModel(const EnergyParams &params) : params_(params)
{
}

void
EnergyModel::record(PowerEvent ev, std::uint64_t count)
{
    const auto i = static_cast<std::size_t>(ev);
    if (i >= kNumPowerEvents)
        panic("EnergyModel::record: invalid power event");
    double per_event = 0.0;
    switch (ev) {
      case PowerEvent::DramActivate:
        per_event = params_.dramActivatePj;
        break;
      case PowerEvent::DramPrecharge:
        per_event = params_.dramPrechargePj;
        break;
      case PowerEvent::DramReadBeat:
        per_event = params_.dramReadBeatPj;
        break;
      case PowerEvent::DramWriteBeat:
        per_event = params_.dramWriteBeatPj;
        break;
      case PowerEvent::DramRefresh:
        per_event = params_.dramRefreshPj;
        break;
      case PowerEvent::TsvBeat:
        per_event = params_.tsvBeatPj;
        break;
      case PowerEvent::NocFlitHop:
        per_event = params_.nocFlitHopPj;
        break;
      case PowerEvent::SerdesFlit:
        per_event = params_.serdesFlitPj;
        break;
      case PowerEvent::kCount:
        panic("EnergyModel::record: kCount is not an event");
    }
    counts_[i] += count;
    energyPj_[i] += per_event * static_cast<double>(count);
}

std::uint64_t
EnergyModel::eventCount(PowerEvent ev) const
{
    return counts_[static_cast<std::size_t>(ev)];
}

double
EnergyModel::dynamicPj(PowerEvent ev) const
{
    return energyPj_[static_cast<std::size_t>(ev)];
}

double
EnergyModel::totalDynamicPj() const
{
    double total = 0.0;
    for (double e : energyPj_)
        total += e;
    return total;
}

double
EnergyModel::dramDynamicPj() const
{
    return dynamicPj(PowerEvent::DramActivate) +
        dynamicPj(PowerEvent::DramPrecharge) +
        dynamicPj(PowerEvent::DramReadBeat) +
        dynamicPj(PowerEvent::DramWriteBeat) +
        dynamicPj(PowerEvent::DramRefresh) +
        dynamicPj(PowerEvent::TsvBeat);
}

double
EnergyModel::logicDynamicPj() const
{
    return dynamicPj(PowerEvent::NocFlitHop) +
        dynamicPj(PowerEvent::SerdesFlit);
}

double
EnergyModel::logicStaticW() const
{
    return params_.serdesIdleW + params_.logicIdleW;
}

double
EnergyModel::dramStaticWPerLayer() const
{
    return params_.dramIdleWPerLayer;
}

double
EnergyModel::totalStaticW(std::uint32_t num_dram_layers) const
{
    return logicStaticW() + dramStaticWPerLayer() * num_dram_layers;
}

double
EnergyModel::windowEnergyPj(double dynamic_base_pj, Tick elapsed,
                            std::uint32_t num_dram_layers) const
{
    return totalDynamicPj() - dynamic_base_pj +
        staticEnergyPj(totalStaticW(num_dram_layers), elapsed);
}

}  // namespace hmcsim
