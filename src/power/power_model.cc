#include "power/power_model.h"

#include <algorithm>

#include "common/log.h"
#include "obs/observability.h"
#include "sim/kernel.h"

namespace hmcsim {

PowerModel::PowerModel(Kernel &kernel, Component *parent, std::string name,
                       const PowerConfig &cfg)
    : Component(kernel, parent, std::move(name)), cfg_(cfg),
      energy_(cfg.energy, cfg.thermal.numDramLayers), thermal_(cfg.thermal),
      governor_(cfg.throttle), lastLayerPj_(cfg.thermal.numDramLayers, 0.0)
{
    cfg_.validate();
    lastStepAt_ = now();
    windowStartAt_ = now();
    if (Observability *o = kernel.obs()) {
        obsMetrics_.bind(o->metricsRegistry(), path());
        obsMetrics_.gauge("avg_power_w", [this] { return avgPowerW(); });
        obsMetrics_.gauge("window_energy_pj",
                          [this] { return windowEnergyPj(); });
        obsMetrics_.gauge("slowdown", [this] { return slowdown(); });
        obsMetrics_.gauge("throttled_fraction",
                          [this] { return throttledFraction(); });
    }
}

void
PowerModel::record(PowerEvent ev, std::uint64_t count)
{
    energy_.record(ev, count);
}

void
PowerModel::recordAtLayer(PowerEvent ev, std::uint64_t count,
                          std::uint32_t dram_layer)
{
    energy_.recordAtLayer(ev, count, dram_layer);
}

void
PowerModel::setThrottleApplier(std::function<void(double)> fn)
{
    applyThrottle_ = std::move(fn);
}

void
PowerModel::start()
{
    if (started_ || !cfg_.enabled)
        return;
    started_ = true;
    lastStepAt_ = now();
    scheduleNext();
}

void
PowerModel::scheduleNext()
{
    kernel().scheduleIn(cfg_.stepInterval, [this] {
        step();
        scheduleNext();
    });
}

void
PowerModel::step()
{
    const Tick dt = now() - lastStepAt_;
    if (dt == 0)
        return;

    // Interval dynamic energy -> average power.  pJ per ps is exactly
    // watts, so the division needs no unit constant.
    const double dram_pj = energy_.dramDynamicPj();
    const double logic_pj = energy_.logicDynamicPj();
    const double dt_d = static_cast<double>(dt);
    const std::uint32_t layers = cfg_.thermal.numDramLayers;

    std::vector<double> power_w(1 + layers);
    power_w[0] =
        (logic_pj - lastLogicPj_) / dt_d + energy_.logicStaticW();

    // Bank events carry a die attribution (bank -> layer mapping);
    // whatever arrived without one (TSV beats, direct record() calls)
    // is spread evenly so aggregate-only probes behave as before.
    double attributed_delta = 0.0;
    std::vector<double> layer_delta(layers, 0.0);
    for (std::uint32_t l = 0; l < layers; ++l) {
        layer_delta[l] =
            energy_.dramLayerAttributedPj(l) - lastLayerPj_[l];
        attributed_delta += layer_delta[l];
    }
    const double spread_w =
        (dram_pj - lastDramPj_ - attributed_delta) / (dt_d * layers);
    for (std::uint32_t l = 0; l < layers; ++l) {
        power_w[1 + l] = layer_delta[l] / dt_d + spread_w +
            energy_.dramStaticWPerLayer();
    }

    thermal_.step(power_w, dt_d * 1e-12);

    // Attribute the elapsed interval to the level that was in effect
    // while it ran, then evaluate the governor for the next one.  The
    // attribution is clipped to the stats window: a reset can land
    // mid-interval, and time before it belongs to the previous window.
    if (governor_.throttling())
        throttledTicks_ += now() - std::max(lastStepAt_, windowStartAt_);
    if (governor_.update(thermal_.maxTemperatureC()) && applyThrottle_)
        applyThrottle_(governor_.slowdown());

    lastStepAt_ = now();
    lastDramPj_ = dram_pj;
    lastLogicPj_ = logic_pj;
    for (std::uint32_t l = 0; l < layers; ++l)
        lastLayerPj_[l] = energy_.dramLayerAttributedPj(l);
}

double
PowerModel::windowEnergyPj() const
{
    return energy_.windowEnergyPj(windowBaseDynamicPj_,
                                  now() - windowStartAt_,
                                  cfg_.thermal.numDramLayers);
}

double
PowerModel::throttledFraction() const
{
    const Tick window = now() - windowStartAt_;
    if (window == 0)
        return 0.0;
    Tick throttled = throttledTicks_;
    if (governor_.throttling())
        throttled += now() - std::max(lastStepAt_, windowStartAt_);
    return static_cast<double>(throttled) / static_cast<double>(window);
}

double
PowerModel::avgPowerW() const
{
    const Tick window = now() - windowStartAt_;
    if (window == 0)
        return 0.0;
    return windowEnergyPj() / static_cast<double>(window);
}

void
PowerModel::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("energy_pj")] = windowEnergyPj();
    out[statName("energy_dynamic_pj")] =
        energy_.totalDynamicPj() - windowBaseDynamicPj_;
    out[statName("avg_power_w")] = avgPowerW();
    out[statName("temp_c")] = thermal_.maxTemperatureC();
    for (std::size_t l = 0; l < thermal_.numLayers(); ++l) {
        const std::string label = l == 0
            ? std::string("temp_logic_c")
            : "temp_dram" + std::to_string(l - 1) + "_c";
        out[statName(label)] = thermal_.temperatureC(l);
    }
    out[statName("throttle_pct")] = 100.0 * throttledFraction();
    out[statName("throttle_level")] =
        static_cast<double>(governor_.level());
    out[statName("slowdown")] = governor_.slowdown();
}

void
PowerModel::resetOwnStats()
{
    windowStartAt_ = now();
    windowBaseDynamicPj_ = energy_.totalDynamicPj();
    throttledTicks_ = 0;
}

}  // namespace hmcsim
