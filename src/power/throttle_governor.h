/**
 * @file
 * Hysteretic temperature-feedback throttle governor.
 *
 * The governor holds a discrete throttle level in [0, numLevels].
 * Each evaluation steps the level up by one when the hottest layer is
 * above the on-threshold and down by one when it is below the
 * off-threshold; inside the hysteresis band the level holds, which is
 * what prevents limit-cycle oscillation right at a threshold.  The
 * level maps linearly onto a timing-stretch factor in
 * [1.0, maxSlowdown] that the device applies to vault schedulers and
 * SerDes links (duty-cycling), reproducing the bandwidth degradation a
 * real cube shows under sustained load.
 */

#ifndef HMCSIM_POWER_THROTTLE_GOVERNOR_H_
#define HMCSIM_POWER_THROTTLE_GOVERNOR_H_

#include <cstdint>

#include "power/power_config.h"

namespace hmcsim {

class ThrottleGovernor
{
  public:
    explicit ThrottleGovernor(const ThrottleParams &params);

    /**
     * Evaluate with the current hottest-layer temperature.
     * @return true if the throttle level changed
     */
    bool update(double max_temp_c);

    /** Current discrete level, 0 (off) .. numLevels (deepest). */
    std::uint32_t level() const { return level_; }

    /** True while any throttling is in effect. */
    bool throttling() const { return level_ > 0; }

    /** Timing stretch factor: 1.0 at level 0, maxSlowdown at full. */
    double slowdown() const;

    /** Level as a fraction of full depth, in [0, 1]. */
    double depthFraction() const;

    const ThrottleParams &params() const { return params_; }

  private:
    ThrottleParams params_;
    std::uint32_t level_ = 0;
};

}  // namespace hmcsim

#endif  // HMCSIM_POWER_THROTTLE_GOVERNOR_H_
