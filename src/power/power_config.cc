#include "power/power_config.h"

#include "common/log.h"

namespace hmcsim {

void
PowerConfig::validate() const
{
    if (stepInterval == 0)
        fatal("power: step interval must be positive");
    if (thermal.numDramLayers == 0)
        fatal("power: need at least one DRAM layer");
    if (thermal.layerResistanceKperW <= 0.0 ||
        thermal.sinkResistanceKperW <= 0.0)
        fatal("power: thermal resistances must be positive");
    if (thermal.layerCapacitanceJperK <= 0.0)
        fatal("power: thermal capacitance must be positive");
    if (throttle.numLevels == 0)
        fatal("power: throttle needs at least one level");
    if (throttle.maxSlowdown < 1.0)
        fatal("power: throttle max slowdown must be >= 1");
    if (throttle.offThresholdC > throttle.onThresholdC)
        fatal("power: throttle off threshold above on threshold "
              "(hysteresis band would be inverted)");
}

PowerConfig
PowerConfig::fromConfig(const Config &cfg)
{
    PowerConfig c;
    c.enabled = cfg.getBool("hmc.power_enabled", c.enabled);
    c.stepInterval = cfg.getU64("hmc.power_step_ps", c.stepInterval);

    c.energy.dramActivatePj =
        cfg.getDouble("hmc.power_dram_act_pj", c.energy.dramActivatePj);
    c.energy.dramPrechargePj =
        cfg.getDouble("hmc.power_dram_pre_pj", c.energy.dramPrechargePj);
    c.energy.dramReadBeatPj =
        cfg.getDouble("hmc.power_dram_read_beat_pj",
                      c.energy.dramReadBeatPj);
    c.energy.dramWriteBeatPj =
        cfg.getDouble("hmc.power_dram_write_beat_pj",
                      c.energy.dramWriteBeatPj);
    c.energy.dramRefreshPj =
        cfg.getDouble("hmc.power_dram_refresh_pj", c.energy.dramRefreshPj);
    c.energy.tsvBeatPj =
        cfg.getDouble("hmc.power_tsv_beat_pj", c.energy.tsvBeatPj);
    c.energy.nocFlitHopPj =
        cfg.getDouble("hmc.power_noc_flit_pj", c.energy.nocFlitHopPj);
    c.energy.serdesFlitPj =
        cfg.getDouble("hmc.power_serdes_flit_pj", c.energy.serdesFlitPj);
    c.energy.chainForwardFlitPj =
        cfg.getDouble("hmc.power_chain_forward_flit_pj",
                      c.energy.chainForwardFlitPj);
    c.energy.serdesIdleW =
        cfg.getDouble("hmc.power_serdes_idle_w", c.energy.serdesIdleW);
    c.energy.logicIdleW =
        cfg.getDouble("hmc.power_logic_idle_w", c.energy.logicIdleW);
    c.energy.dramIdleWPerLayer =
        cfg.getDouble("hmc.power_dram_idle_w_per_layer",
                      c.energy.dramIdleWPerLayer);

    c.thermal.numDramLayers = static_cast<std::uint32_t>(
        cfg.getU64("hmc.power_dram_layers", c.thermal.numDramLayers));
    c.thermal.ambientC =
        cfg.getDouble("hmc.power_ambient_c", c.thermal.ambientC);
    c.thermal.layerResistanceKperW =
        cfg.getDouble("hmc.power_layer_resistance_k_per_w",
                      c.thermal.layerResistanceKperW);
    c.thermal.sinkResistanceKperW =
        cfg.getDouble("hmc.power_sink_resistance_k_per_w",
                      c.thermal.sinkResistanceKperW);
    c.thermal.layerCapacitanceJperK =
        cfg.getDouble("hmc.power_layer_capacitance_j_per_k",
                      c.thermal.layerCapacitanceJperK);

    c.throttle.enabled =
        cfg.getBool("hmc.power_throttle_enabled", c.throttle.enabled);
    c.throttle.onThresholdC =
        cfg.getDouble("hmc.power_throttle_on_c", c.throttle.onThresholdC);
    c.throttle.offThresholdC =
        cfg.getDouble("hmc.power_throttle_off_c", c.throttle.offThresholdC);
    c.throttle.numLevels = static_cast<std::uint32_t>(
        cfg.getU64("hmc.power_throttle_levels", c.throttle.numLevels));
    c.throttle.maxSlowdown =
        cfg.getDouble("hmc.power_throttle_max_slowdown",
                      c.throttle.maxSlowdown);
    c.validate();
    return c;
}

void
PowerConfig::toConfig(Config &cfg) const
{
    cfg.setBool("hmc.power_enabled", enabled);
    cfg.setU64("hmc.power_step_ps", stepInterval);
    cfg.setDouble("hmc.power_dram_act_pj", energy.dramActivatePj);
    cfg.setDouble("hmc.power_dram_pre_pj", energy.dramPrechargePj);
    cfg.setDouble("hmc.power_dram_read_beat_pj", energy.dramReadBeatPj);
    cfg.setDouble("hmc.power_dram_write_beat_pj", energy.dramWriteBeatPj);
    cfg.setDouble("hmc.power_dram_refresh_pj", energy.dramRefreshPj);
    cfg.setDouble("hmc.power_tsv_beat_pj", energy.tsvBeatPj);
    cfg.setDouble("hmc.power_noc_flit_pj", energy.nocFlitHopPj);
    cfg.setDouble("hmc.power_serdes_flit_pj", energy.serdesFlitPj);
    cfg.setDouble("hmc.power_chain_forward_flit_pj",
                  energy.chainForwardFlitPj);
    cfg.setDouble("hmc.power_serdes_idle_w", energy.serdesIdleW);
    cfg.setDouble("hmc.power_logic_idle_w", energy.logicIdleW);
    cfg.setDouble("hmc.power_dram_idle_w_per_layer",
                  energy.dramIdleWPerLayer);
    cfg.setU64("hmc.power_dram_layers", thermal.numDramLayers);
    cfg.setDouble("hmc.power_ambient_c", thermal.ambientC);
    cfg.setDouble("hmc.power_layer_resistance_k_per_w",
                  thermal.layerResistanceKperW);
    cfg.setDouble("hmc.power_sink_resistance_k_per_w",
                  thermal.sinkResistanceKperW);
    cfg.setDouble("hmc.power_layer_capacitance_j_per_k",
                  thermal.layerCapacitanceJperK);
    cfg.setBool("hmc.power_throttle_enabled", throttle.enabled);
    cfg.setDouble("hmc.power_throttle_on_c", throttle.onThresholdC);
    cfg.setDouble("hmc.power_throttle_off_c", throttle.offThresholdC);
    cfg.setU64("hmc.power_throttle_levels", throttle.numLevels);
    cfg.setDouble("hmc.power_throttle_max_slowdown",
                  throttle.maxSlowdown);
}

}  // namespace hmcsim
