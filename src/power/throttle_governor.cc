#include "power/throttle_governor.h"

namespace hmcsim {

ThrottleGovernor::ThrottleGovernor(const ThrottleParams &params)
    : params_(params)
{
}

bool
ThrottleGovernor::update(double max_temp_c)
{
    if (!params_.enabled)
        return false;
    const std::uint32_t before = level_;
    if (max_temp_c > params_.onThresholdC) {
        if (level_ < params_.numLevels)
            ++level_;
    } else if (max_temp_c < params_.offThresholdC) {
        if (level_ > 0)
            --level_;
    }
    // Inside [off, on] the level holds: hysteresis.
    return level_ != before;
}

double
ThrottleGovernor::slowdown() const
{
    return 1.0 + (params_.maxSlowdown - 1.0) * depthFraction();
}

double
ThrottleGovernor::depthFraction() const
{
    return static_cast<double>(level_) /
        static_cast<double>(params_.numLevels);
}

}  // namespace hmcsim
