#include "analysis/heatmap.h"

#include <algorithm>
#include <sstream>

#include "common/log.h"
#include "common/strutil.h"

namespace hmcsim {

Heatmap::Heatmap(std::vector<std::string> row_labels,
                 std::vector<std::string> col_labels)
    : rowLabels_(std::move(row_labels)), colLabels_(std::move(col_labels))
{
    if (rowLabels_.empty() || colLabels_.empty())
        panic("Heatmap: need at least one row and one column");
    cells_.assign(rowLabels_.size(),
                  std::vector<double>(colLabels_.size(), 0.0));
}

void
Heatmap::checkIndex(std::size_t r, std::size_t c) const
{
    if (r >= rows() || c >= cols())
        panic("Heatmap: index out of range");
}

void
Heatmap::add(std::size_t r, std::size_t c, double weight)
{
    checkIndex(r, c);
    cells_[r][c] += weight;
}

double
Heatmap::at(std::size_t r, std::size_t c) const
{
    checkIndex(r, c);
    return cells_[r][c];
}

double
Heatmap::rowTotal(std::size_t r) const
{
    double total = 0.0;
    for (double v : cells_[r])
        total += v;
    return total;
}

double
Heatmap::rowMax(std::size_t r) const
{
    return *std::max_element(cells_[r].begin(), cells_[r].end());
}

double
Heatmap::rowFraction(std::size_t r, std::size_t c) const
{
    checkIndex(r, c);
    const double total = rowTotal(r);
    return total > 0.0 ? cells_[r][c] / total : 0.0;
}

double
Heatmap::rowMaxFraction(std::size_t r, std::size_t c) const
{
    checkIndex(r, c);
    const double mx = rowMax(r);
    return mx > 0.0 ? cells_[r][c] / mx : 0.0;
}

Heatmap
Heatmap::fromHistograms(const std::vector<std::string> &row_labels,
                        const std::vector<Histogram> &rows)
{
    if (rows.empty() || row_labels.size() != rows.size())
        panic("Heatmap::fromHistograms: label/row mismatch");
    std::vector<std::string> cols;
    for (std::size_t b = 0; b < rows[0].bins(); ++b)
        cols.push_back(formatDouble(rows[0].binLow(b), 0));
    Heatmap hm(row_labels, cols);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        if (rows[r].bins() != rows[0].bins())
            panic("Heatmap::fromHistograms: ragged histograms");
        for (std::size_t b = 0; b < rows[r].bins(); ++b) {
            hm.add(r, b, static_cast<double>(rows[r].count(b)));
        }
    }
    return hm;
}

std::string
Heatmap::toCsv(bool row_normalized) const
{
    std::ostringstream oss;
    oss << "row";
    for (const std::string &c : colLabels_)
        oss << ',' << c;
    oss << '\n';
    for (std::size_t r = 0; r < rows(); ++r) {
        oss << rowLabels_[r];
        for (std::size_t c = 0; c < cols(); ++c) {
            const double v =
                row_normalized ? rowFraction(r, c) : cells_[r][c];
            oss << ',' << formatDouble(v, 4);
        }
        oss << '\n';
    }
    return oss.str();
}

std::string
Heatmap::toAscii(bool row_normalized) const
{
    static const char ramp[] = " .:-=+*#%@";
    std::ostringstream oss;
    std::size_t label_width = 0;
    for (const std::string &l : rowLabels_)
        label_width = std::max(label_width, l.size());
    for (std::size_t r = 0; r < rows(); ++r) {
        oss << rowLabels_[r]
            << std::string(label_width - rowLabels_[r].size() + 1, ' ')
            << '|';
        // Scale each row against its own max so shapes stay visible.
        const double mx = rowMax(r);
        for (std::size_t c = 0; c < cols(); ++c) {
            double v = row_normalized
                ? (mx > 0.0 ? cells_[r][c] / mx : 0.0)
                : cells_[r][c];
            v = std::clamp(v, 0.0, 1.0);
            const int idx =
                std::min<int>(9, static_cast<int>(v * 9.999));
            oss << ramp[idx];
        }
        oss << "|\n";
    }
    return oss.str();
}

}  // namespace hmcsim
