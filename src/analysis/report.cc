#include "analysis/report.h"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/strutil.h"

namespace hmcsim {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream esc;
                esc << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c);
                out += esc.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    std::ostringstream os;
    os << std::setprecision(12) << v;
    return os.str();
}

Report::~Report()
{
    finish();
}

void
Report::finish()
{
    if (!json() || finished_)
        return;
    finished_ = true;
    out_ << "{\n  \"sections\": [";
    for (std::size_t s = 0; s < sections_.size(); ++s) {
        const Section &sec = sections_[s];
        out_ << (s ? ",\n" : "\n") << "    {\"title\": \""
             << jsonEscape(sec.title) << "\", \"rows\": [";
        for (std::size_t r = 0; r < sec.rows.size(); ++r) {
            out_ << (r ? ",\n" : "\n") << "      " << sec.rows[r];
        }
        out_ << (sec.rows.empty() ? "]}" : "\n    ]}");
    }
    out_ << (sections_.empty() ? "]\n}\n" : "\n  ]\n}\n");
}

void
Report::addRow(std::string row)
{
    if (sections_.empty())
        sections_.push_back(Section{});
    sections_.back().rows.push_back(std::move(row));
}

void
Report::section(const std::string &title)
{
    if (json()) {
        sections_.push_back(Section{title, {}});
        return;
    }
    out_ << "\n==== " << title << " ====\n";
}

void
Report::note(const std::string &text)
{
    if (json()) {
        addRow("{\"type\": \"note\", \"text\": \"" + jsonEscape(text) +
               "\"}");
        return;
    }
    out_ << "  " << text << '\n';
}

void
Report::compare(const std::string &name, double paper_value,
                double measured, const std::string &unit, bool approximate)
{
    const double ratio =
        paper_value != 0.0 ? measured / paper_value : 0.0;
    if (json()) {
        addRow("{\"type\": \"compare\", \"name\": \"" + jsonEscape(name) +
               "\", \"paper\": " + jsonNumber(paper_value) +
               ", \"measured\": " + jsonNumber(measured) +
               ", \"ratio\": " + jsonNumber(ratio) + ", \"unit\": \"" +
               jsonEscape(unit) + "\", \"approximate\": " +
               (approximate ? "true" : "false") + "}");
        return;
    }
    out_ << "  " << std::left << std::setw(36) << name << " paper"
         << (approximate ? "~" : "=") << std::right << std::setw(10)
         << formatDouble(paper_value, 2) << ' ' << std::setw(8) << unit
         << "  measured=" << std::setw(10) << formatDouble(measured, 2)
         << "  ratio=" << formatDouble(ratio, 2) << '\n';
}

void
Report::measured(const std::string &name, double value,
                 const std::string &unit)
{
    if (json()) {
        addRow("{\"type\": \"measured\", \"name\": \"" + jsonEscape(name) +
               "\", \"value\": " + jsonNumber(value) + ", \"unit\": \"" +
               jsonEscape(unit) + "\"}");
        return;
    }
    out_ << "  " << std::left << std::setw(36) << name
         << " measured=" << std::right << std::setw(10)
         << formatDouble(value, 2) << ' ' << unit << '\n';
}

void
Report::power(double energy_pj, double temp_c, double throttle_pct)
{
    if (json()) {
        addRow("{\"type\": \"power\", \"energy_pj\": " +
               jsonNumber(energy_pj) + ", \"temp_c\": " +
               jsonNumber(temp_c) + ", \"throttle_pct\": " +
               jsonNumber(throttle_pct) + "}");
        return;
    }
    out_ << "  " << std::left << std::setw(36) << "power/thermal"
         << " energy_pj=" << formatDouble(energy_pj, 0)
         << "  temp_c=" << formatDouble(temp_c, 1)
         << "  throttle_pct=" << formatDouble(throttle_pct, 1) << '\n';
}

void
Report::perCube(std::uint32_t cube, std::uint64_t served,
                std::uint32_t request_hops, double share_pct)
{
    if (json()) {
        addRow("{\"type\": \"per_cube\", \"cube\": " +
               std::to_string(cube) + ", \"served\": " +
               std::to_string(served) + ", \"request_hops\": " +
               std::to_string(request_hops) + ", \"share_pct\": " +
               jsonNumber(share_pct) + "}");
        return;
    }
    out_ << "  " << std::left << std::setw(36)
         << ("cube " + std::to_string(cube))
         << " served=" << std::right << std::setw(10) << served
         << "  hops=" << request_hops
         << "  share_pct=" << formatDouble(share_pct, 1) << '\n';
}

void
Report::perHost(std::uint32_t host, std::uint32_t entry_cube,
                std::uint64_t accepted, double bandwidth_gbs,
                double avg_read_ns)
{
    if (json()) {
        addRow("{\"type\": \"per_host\", \"host\": " +
               std::to_string(host) + ", \"entry_cube\": " +
               std::to_string(entry_cube) + ", \"accepted\": " +
               std::to_string(accepted) + ", \"bandwidth_gbs\": " +
               jsonNumber(bandwidth_gbs) + ", \"avg_read_ns\": " +
               jsonNumber(avg_read_ns) + "}");
        return;
    }
    out_ << "  " << std::left << std::setw(36)
         << ("host " + std::to_string(host) + " @ cube " +
             std::to_string(entry_cube))
         << " accepted=" << std::right << std::setw(10) << accepted
         << "  bw_gbs=" << formatDouble(bandwidth_gbs, 2)
         << "  avg_read_ns=" << formatDouble(avg_read_ns, 0) << '\n';
}

void
Report::anatomyPhase(const std::string &phase, std::uint64_t count,
                     double mean_ns, double p50_ns, double p99_ns,
                     double share_mean_pct)
{
    if (json()) {
        addRow("{\"type\": \"anatomy_phase\", \"phase\": \"" +
               jsonEscape(phase) + "\", \"count\": " +
               std::to_string(count) + ", \"mean_ns\": " +
               jsonNumber(mean_ns) + ", \"p50_ns\": " +
               jsonNumber(p50_ns) + ", \"p99_ns\": " +
               jsonNumber(p99_ns) + ", \"share_mean_pct\": " +
               jsonNumber(share_mean_pct) + "}");
        return;
    }
    out_ << "  " << std::left << std::setw(20) << phase
         << " mean=" << std::right << std::setw(9)
         << formatDouble(mean_ns, 1) << " ns  p50=" << std::setw(9)
         << formatDouble(p50_ns, 1) << " ns  p99=" << std::setw(9)
         << formatDouble(p99_ns, 1)
         << " ns  share=" << formatDouble(share_mean_pct, 1) << "%\n";
}

void
Report::verdict(const std::string &dominant_mean_phase,
                double dominant_mean_share_pct,
                const std::string &dominant_p99_phase,
                double dominant_p99_share_pct, double queueing_share_pct,
                double service_share_pct, std::uint64_t completions,
                std::uint64_t monotonicity_violations,
                std::uint64_t residual_violations,
                const std::string &summary)
{
    if (json()) {
        addRow("{\"type\": \"verdict\", \"dominant_mean_phase\": \"" +
               jsonEscape(dominant_mean_phase) +
               "\", \"dominant_mean_share_pct\": " +
               jsonNumber(dominant_mean_share_pct) +
               ", \"dominant_p99_phase\": \"" +
               jsonEscape(dominant_p99_phase) +
               "\", \"dominant_p99_share_pct\": " +
               jsonNumber(dominant_p99_share_pct) +
               ", \"queueing_share_pct\": " +
               jsonNumber(queueing_share_pct) +
               ", \"service_share_pct\": " +
               jsonNumber(service_share_pct) + ", \"completions\": " +
               std::to_string(completions) +
               ", \"monotonicity_violations\": " +
               std::to_string(monotonicity_violations) +
               ", \"residual_violations\": " +
               std::to_string(residual_violations) + ", \"summary\": \"" +
               jsonEscape(summary) + "\"}");
        return;
    }
    out_ << "  verdict: " << summary << '\n'
         << "  (" << completions << " completions, "
         << monotonicity_violations << " monotonicity violations, "
         << residual_violations << " residual violations)\n";
}

}  // namespace hmcsim
