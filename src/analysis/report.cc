#include "analysis/report.h"

#include <iomanip>

#include "common/strutil.h"

namespace hmcsim {

void
Report::section(const std::string &title)
{
    out_ << "\n==== " << title << " ====\n";
}

void
Report::note(const std::string &text)
{
    out_ << "  " << text << '\n';
}

void
Report::compare(const std::string &name, double paper_value,
                double measured, const std::string &unit, bool approximate)
{
    const double ratio =
        paper_value != 0.0 ? measured / paper_value : 0.0;
    out_ << "  " << std::left << std::setw(36) << name << " paper"
         << (approximate ? "~" : "=") << std::right << std::setw(10)
         << formatDouble(paper_value, 2) << ' ' << std::setw(8) << unit
         << "  measured=" << std::setw(10) << formatDouble(measured, 2)
         << "  ratio=" << formatDouble(ratio, 2) << '\n';
}

void
Report::measured(const std::string &name, double value,
                 const std::string &unit)
{
    out_ << "  " << std::left << std::setw(36) << name
         << " measured=" << std::right << std::setw(10)
         << formatDouble(value, 2) << ' ' << unit << '\n';
}

void
Report::power(double energy_pj, double temp_c, double throttle_pct)
{
    out_ << "  " << std::left << std::setw(36) << "power/thermal"
         << " energy_pj=" << formatDouble(energy_pj, 0)
         << "  temp_c=" << formatDouble(temp_c, 1)
         << "  throttle_pct=" << formatDouble(throttle_pct, 1) << '\n';
}

void
Report::perCube(std::uint32_t cube, std::uint64_t served,
                std::uint32_t request_hops, double share_pct)
{
    out_ << "  " << std::left << std::setw(36)
         << ("cube " + std::to_string(cube))
         << " served=" << std::right << std::setw(10) << served
         << "  hops=" << request_hops
         << "  share_pct=" << formatDouble(share_pct, 1) << '\n';
}

void
Report::perHost(std::uint32_t host, std::uint32_t entry_cube,
                std::uint64_t accepted, double bandwidth_gbs,
                double avg_read_ns)
{
    out_ << "  " << std::left << std::setw(36)
         << ("host " + std::to_string(host) + " @ cube " +
             std::to_string(entry_cube))
         << " accepted=" << std::right << std::setw(10) << accepted
         << "  bw_gbs=" << formatDouble(bandwidth_gbs, 2)
         << "  avg_read_ns=" << formatDouble(avg_read_ns, 0) << '\n';
}

}  // namespace hmcsim
