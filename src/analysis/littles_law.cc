#include "analysis/littles_law.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

double
estimateOutstanding(double data_bandwidth_gbs, double latency_ns,
                    std::uint32_t request_bytes)
{
    if (request_bytes == 0)
        panic("estimateOutstanding: zero request size");
    // GB/s = B/ns, so (B/ns * ns) / B is dimensionless.
    return data_bandwidth_gbs * latency_ns /
        static_cast<double>(request_bytes);
}

std::size_t
saturationIndex(const std::vector<double> &bandwidth, double tolerance)
{
    if (bandwidth.empty())
        panic("saturationIndex: empty curve");
    const double peak = *std::max_element(bandwidth.begin(),
                                          bandwidth.end());
    if (peak <= 0.0)
        return bandwidth.size() - 1;
    for (std::size_t i = 0; i < bandwidth.size(); ++i) {
        if (bandwidth[i] >= peak * (1.0 - tolerance))
            return i;
    }
    return bandwidth.size() - 1;
}

double
arrivalRatePerSec(double wire_bandwidth_gbs,
                  std::uint32_t wire_bytes_per_access)
{
    if (wire_bytes_per_access == 0)
        panic("arrivalRatePerSec: zero access size");
    return wire_bandwidth_gbs * 1e9 /
        static_cast<double>(wire_bytes_per_access);
}

}  // namespace hmcsim
