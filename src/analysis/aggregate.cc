#include "analysis/aggregate.h"

namespace hmcsim {

SampleStats
mergeReadLatencies(const std::vector<ExperimentResult> &runs)
{
    SampleStats out;
    for (const ExperimentResult &r : runs)
        out.merge(r.mergedRead);
    return out;
}

double
meanBandwidthGBs(const std::vector<ExperimentResult> &runs)
{
    if (runs.empty())
        return 0.0;
    double sum = 0.0;
    for (const ExperimentResult &r : runs)
        sum += r.bandwidthGBs;
    return sum / static_cast<double>(runs.size());
}

SampleStats
statsOfValues(const std::vector<double> &values)
{
    SampleStats out;
    for (double v : values)
        out.add(v);
    return out;
}

}  // namespace hmcsim
