/**
 * @file
 * Aggregation helpers for combining experiment results across ports,
 * vaults, or repeated runs.
 */

#ifndef HMCSIM_ANALYSIS_AGGREGATE_H_
#define HMCSIM_ANALYSIS_AGGREGATE_H_

#include <vector>

#include "common/stats.h"
#include "host/experiment.h"

namespace hmcsim {

/** Merge read-latency statistics of many results into one. */
SampleStats mergeReadLatencies(const std::vector<ExperimentResult> &runs);

/** Mean of the per-run total bandwidths. */
double meanBandwidthGBs(const std::vector<ExperimentResult> &runs);

/** Across-values sample statistics (e.g. per-vault means, Fig. 11). */
SampleStats statsOfValues(const std::vector<double> &values);

}  // namespace hmcsim

#endif  // HMCSIM_ANALYSIS_AGGREGATE_H_
