/**
 * @file
 * Little's-law estimator used by the paper (Section IV-F / Fig. 14):
 * the average number of outstanding requests inside a stationary
 * system equals arrival rate times mean residence time.
 */

#ifndef HMCSIM_ANALYSIS_LITTLES_LAW_H_
#define HMCSIM_ANALYSIS_LITTLES_LAW_H_

#include <cstdint>
#include <vector>

namespace hmcsim {

/**
 * Estimate outstanding requests from observables, exactly as the paper
 * computes Fig. 14: measure the (data) bandwidth and latency at a
 * saturated point, convert bandwidth to an arrival rate via the
 * request size, and multiply by latency.
 *
 * @param data_bandwidth_gbs payload bandwidth in GB/s (decimal)
 * @param latency_ns mean request latency in nanoseconds
 * @param request_bytes request payload size
 */
double estimateOutstanding(double data_bandwidth_gbs, double latency_ns,
                           std::uint32_t request_bytes);

/**
 * Locate the saturation (knee) point of a bandwidth curve: the first
 * index whose value is within @p tolerance of the curve's maximum.
 * Returns the last index if the curve never flattens.
 */
std::size_t saturationIndex(const std::vector<double> &bandwidth,
                            double tolerance = 0.05);

/**
 * Utilization-law cross-check: arrival rate (requests/s) implied by a
 * bandwidth measured with the paper's request+response formula.
 */
double arrivalRatePerSec(double wire_bandwidth_gbs,
                         std::uint32_t wire_bytes_per_access);

}  // namespace hmcsim

#endif  // HMCSIM_ANALYSIS_LITTLES_LAW_H_
