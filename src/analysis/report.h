/**
 * @file
 * Formatting helpers for the benchmark harnesses: section banners and
 * paper-vs-measured comparison lines with ratios.
 */

#ifndef HMCSIM_ANALYSIS_REPORT_H_
#define HMCSIM_ANALYSIS_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace hmcsim {

class Report
{
  public:
    explicit Report(std::ostream &out) : out_(out) {}

    /** "==== title ====" banner. */
    void section(const std::string &title);

    /** Free-form note line. */
    void note(const std::string &text);

    /**
     * One comparison row: name, paper value, measured value, ratio.
     * @param approximate marks paper values read off a plot
     */
    void compare(const std::string &name, double paper_value,
                 double measured, const std::string &unit,
                 bool approximate = false);

    /** A plain measured value without a paper counterpart. */
    void measured(const std::string &name, double value,
                  const std::string &unit);

    /**
     * One power/thermal summary row: window energy, hottest layer,
     * and the share of the window spent thermally throttled.
     */
    void power(double energy_pj, double temp_c, double throttle_pct);

    /**
     * One multi-cube chaining row: requests served by @p cube, the
     * static pass-through hop count to reach it, and its share of the
     * total traffic.
     */
    void perCube(std::uint32_t cube, std::uint64_t served,
                 std::uint32_t request_hops, double share_pct);

    /**
     * One multi-host row: host id, its chain entry cube, accepted
     * requests, bandwidth share and average read latency.
     */
    void perHost(std::uint32_t host, std::uint32_t entry_cube,
                 std::uint64_t accepted, double bandwidth_gbs,
                 double avg_read_ns);

  private:
    std::ostream &out_;
};

}  // namespace hmcsim

#endif  // HMCSIM_ANALYSIS_REPORT_H_
