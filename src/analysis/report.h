/**
 * @file
 * Formatting helpers for the benchmark harnesses: section banners and
 * paper-vs-measured comparison lines with ratios.
 *
 * Two output formats behind the same call surface:
 *  - Text (default): the classic aligned human-readable lines,
 *    emitted immediately;
 *  - Json: every row is buffered as a typed object and the whole
 *    report is written as one JSON document when finish() runs (or at
 *    destruction), mirroring the CSV result tables for machine
 *    consumption.
 */

#ifndef HMCSIM_ANALYSIS_REPORT_H_
#define HMCSIM_ANALYSIS_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hmcsim {

class Report
{
  public:
    enum class Format { Text, Json };

    explicit Report(std::ostream &out, Format fmt = Format::Text)
        : out_(out), fmt_(fmt)
    {
    }

    /** JSON mode flushes the buffered document if finish() never ran. */
    ~Report();

    Report(const Report &) = delete;
    Report &operator=(const Report &) = delete;

    Format format() const { return fmt_; }

    /** "==== title ====" banner / a new JSON section object. */
    void section(const std::string &title);

    /** Free-form note line. */
    void note(const std::string &text);

    /**
     * One comparison row: name, paper value, measured value, ratio.
     * @param approximate marks paper values read off a plot
     */
    void compare(const std::string &name, double paper_value,
                 double measured, const std::string &unit,
                 bool approximate = false);

    /** A plain measured value without a paper counterpart. */
    void measured(const std::string &name, double value,
                  const std::string &unit);

    /**
     * One power/thermal summary row: window energy, hottest layer,
     * and the share of the window spent thermally throttled.
     */
    void power(double energy_pj, double temp_c, double throttle_pct);

    /**
     * One multi-cube chaining row: requests served by @p cube, the
     * static pass-through hop count to reach it, and its share of the
     * total traffic.
     */
    void perCube(std::uint32_t cube, std::uint64_t served,
                 std::uint32_t request_hops, double share_pct);

    /**
     * One multi-host row: host id, its chain entry cube, accepted
     * requests, bandwidth share and average read latency.
     */
    void perHost(std::uint32_t host, std::uint32_t entry_cube,
                 std::uint64_t accepted, double bandwidth_gbs,
                 double avg_read_ns);

    /**
     * One latency-anatomy waterfall row: a phase's sample count, mean,
     * p50/p99 and its share of the summed mean latency.
     */
    void anatomyPhase(const std::string &phase, std::uint64_t count,
                      double mean_ns, double p50_ns, double p99_ns,
                      double share_mean_pct);

    /**
     * The automated bottleneck verdict: dominant phases by mean and
     * stacked-p99 share, the queueing-vs-service split, and the
     * phase-conservation health counters.
     */
    void verdict(const std::string &dominant_mean_phase,
                 double dominant_mean_share_pct,
                 const std::string &dominant_p99_phase,
                 double dominant_p99_share_pct, double queueing_share_pct,
                 double service_share_pct, std::uint64_t completions,
                 std::uint64_t monotonicity_violations,
                 std::uint64_t residual_violations,
                 const std::string &summary);

    /** Emit the buffered JSON document; idempotent, no-op in Text. */
    void finish();

  private:
    struct Section {
        std::string title;
        /** Pre-serialized JSON row objects. */
        std::vector<std::string> rows;
    };

    std::ostream &out_;
    Format fmt_ = Format::Text;
    std::vector<Section> sections_;
    bool finished_ = false;

    bool json() const { return fmt_ == Format::Json; }

    /** Append one serialized row to the current (possibly implicit,
     *  untitled) section. */
    void addRow(std::string row);
};

/** Backslash-escape @p s for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** JSON number literal for @p v; non-finite values become null. */
std::string jsonNumber(double v);

}  // namespace hmcsim

#endif  // HMCSIM_ANALYSIS_REPORT_H_
