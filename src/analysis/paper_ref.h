/**
 * @file
 * Reference numbers transcribed from the paper's text, used by the
 * benchmark harnesses to print paper-vs-measured comparisons.  Only
 * values stated numerically in the text are recorded; eyeballed plot
 * values are marked approximate in the report strings.
 */

#ifndef HMCSIM_ANALYSIS_PAPER_REF_H_
#define HMCSIM_ANALYSIS_PAPER_REF_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hmcsim {

/** One referenced quantity from the paper. */
struct PaperValue {
    std::string experiment;  ///< e.g. "fig6"
    std::string name;        ///< e.g. "peak_bandwidth_128B"
    double value;            ///< in `unit`
    std::string unit;
    bool approximate;        ///< read off a plot rather than stated
};

/** All transcribed reference values. */
const std::vector<PaperValue> &paperValues();

/** Look up a value; raises fatal() if missing. */
double paperValue(const std::string &experiment, const std::string &name);

namespace paper {

// Section II / Eq. 1.
constexpr double kPeakBandwidthGBs = 60.0;
constexpr double kResponseCapGBs = 30.0;

// Section IV-A (Fig. 6).
constexpr double kFig6MinBandwidthGBs = 2.0;    // 32 B, one bank
constexpr double kFig6MaxBandwidthGBs = 23.0;   // 128 B, >= 2 vaults
constexpr double kFig6VaultCapGBs = 10.0;       // within one vault
constexpr double kFig6OneBank128BLatencyNs = 24233.0;
constexpr double kFig6MultiVault16BLatencyNs = 1966.0;

// Section IV-B (Figs. 7/8).
constexpr double kFig7FloorUs = 0.7;
constexpr double kFig7Max16BUs = 1.1;    // at 55 requests
constexpr double kFig7Max128BUs = 2.2;   // at 55 requests
constexpr double kFig8KneeRequests = 100.0;
constexpr double kInfrastructureNs = 547.0;
constexpr double kHmcNoLoadMinNs = 100.0;
constexpr double kHmcNoLoadMaxNs = 180.0;
constexpr double kDramCoreNs = 41.0;  // tRCD + tCL + tRP

// Section IV-C (Fig. 9).
constexpr double kFig9CollisionPenaltyPct = 40.0;

// Section IV-D (Figs. 10/11).
constexpr double kFig11Stddev16BNs = 20.0;
constexpr double kFig11Stddev32BNs = 40.0;
constexpr double kFig11Stddev64BNs = 100.0;
constexpr double kFig11Stddev128BNs = 106.0;
constexpr double kFig10Range16BNs = 29.0;
constexpr double kFig10Range32BNs = 76.0;
constexpr double kFig10Range64BNs = 136.0;
constexpr double kFig10Range128BNs = 203.0;
// Heatmap axes (bin edges of Fig. 10a-d).
constexpr double kFig10Lo16BNs = 1617.0;
constexpr double kFig10Hi16BNs = 1675.0;
constexpr double kFig10Lo128BNs = 3894.0;
constexpr double kFig10Hi128BNs = 4300.0;

// Section IV-F (Fig. 14).
constexpr double kFig14TwoBanks = 288.0;
constexpr double kFig14FourBanks = 535.0;

}  // namespace paper

}  // namespace hmcsim

#endif  // HMCSIM_ANALYSIS_PAPER_REF_H_
