#include "analysis/paper_ref.h"

#include "common/log.h"

namespace hmcsim {

const std::vector<PaperValue> &
paperValues()
{
    static const std::vector<PaperValue> values = {
        {"eq1", "peak_bandwidth", paper::kPeakBandwidthGBs, "GB/s", false},
        {"eq1", "response_cap", paper::kResponseCapGBs, "GB/s", false},
        {"fig6", "min_bandwidth_32B_1bank", paper::kFig6MinBandwidthGBs,
         "GB/s", false},
        {"fig6", "max_bandwidth_128B", paper::kFig6MaxBandwidthGBs, "GB/s",
         false},
        {"fig6", "vault_cap", paper::kFig6VaultCapGBs, "GB/s", false},
        {"fig6", "latency_1bank_128B", paper::kFig6OneBank128BLatencyNs,
         "ns", false},
        {"fig6", "latency_multivault_16B",
         paper::kFig6MultiVault16BLatencyNs, "ns", false},
        {"fig7", "floor", paper::kFig7FloorUs, "us", false},
        {"fig7", "max_16B_at_55", paper::kFig7Max16BUs, "us", false},
        {"fig7", "max_128B_at_55", paper::kFig7Max128BUs, "us", false},
        {"fig8", "knee_requests", paper::kFig8KneeRequests, "requests",
         true},
        {"fig7", "infrastructure", paper::kInfrastructureNs, "ns", false},
        {"fig7", "hmc_no_load_min", paper::kHmcNoLoadMinNs, "ns", false},
        {"fig7", "hmc_no_load_max", paper::kHmcNoLoadMaxNs, "ns", false},
        {"fig9", "collision_penalty_pct",
         paper::kFig9CollisionPenaltyPct, "%", false},
        {"fig11", "stddev_16B", paper::kFig11Stddev16BNs, "ns", false},
        {"fig11", "stddev_32B", paper::kFig11Stddev32BNs, "ns", false},
        {"fig11", "stddev_64B", paper::kFig11Stddev64BNs, "ns", false},
        {"fig11", "stddev_128B", paper::kFig11Stddev128BNs, "ns", false},
        {"fig10", "range_16B", paper::kFig10Range16BNs, "ns", false},
        {"fig10", "range_32B", paper::kFig10Range32BNs, "ns", false},
        {"fig10", "range_64B", paper::kFig10Range64BNs, "ns", false},
        {"fig10", "range_128B", paper::kFig10Range128BNs, "ns", false},
        {"fig14", "outstanding_2banks", paper::kFig14TwoBanks, "requests",
         false},
        {"fig14", "outstanding_4banks", paper::kFig14FourBanks, "requests",
         false},
    };
    return values;
}

double
paperValue(const std::string &experiment, const std::string &name)
{
    for (const PaperValue &v : paperValues()) {
        if (v.experiment == experiment && v.name == name)
            return v.value;
    }
    fatal("paperValue: no reference '" + experiment + "/" + name + "'");
}

}  // namespace hmcsim
