/**
 * @file
 * Heatmap builder for the Fig. 10/12 latency-per-vault views: a matrix
 * of row-normalized histogram fractions with CSV and ASCII rendering.
 */

#ifndef HMCSIM_ANALYSIS_HEATMAP_H_
#define HMCSIM_ANALYSIS_HEATMAP_H_

#include <string>
#include <vector>

#include "common/histogram.h"

namespace hmcsim {

class Heatmap
{
  public:
    /**
     * @param row_labels one label per row
     * @param col_labels one label per column
     */
    Heatmap(std::vector<std::string> row_labels,
            std::vector<std::string> col_labels);

    std::size_t rows() const { return rowLabels_.size(); }
    std::size_t cols() const { return colLabels_.size(); }

    /** Accumulate @p weight into cell (r, c). */
    void add(std::size_t r, std::size_t c, double weight = 1.0);

    double at(std::size_t r, std::size_t c) const;

    /** Cell value divided by its row's total (paper Fig. 10 scheme). */
    double rowFraction(std::size_t r, std::size_t c) const;

    /** Cell value divided by its row's max (paper Fig. 12 scheme). */
    double rowMaxFraction(std::size_t r, std::size_t c) const;

    /** Build rows from per-row histograms (bins become columns). */
    static Heatmap fromHistograms(const std::vector<std::string> &row_labels,
                                  const std::vector<Histogram> &rows);

    /** Render as CSV with row/column labels, row-normalized. */
    std::string toCsv(bool row_normalized = true) const;

    /** Render as ASCII art with a 10-level shade ramp. */
    std::string toAscii(bool row_normalized = true) const;

  private:
    std::vector<std::string> rowLabels_;
    std::vector<std::string> colLabels_;
    std::vector<std::vector<double>> cells_;

    void checkIndex(std::size_t r, std::size_t c) const;
    double rowTotal(std::size_t r) const;
    double rowMax(std::size_t r) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_ANALYSIS_HEATMAP_H_
