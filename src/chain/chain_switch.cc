#include "chain/chain_switch.h"

#include "common/log.h"
#include "obs/observability.h"
#include "sim/kernel.h"

namespace hmcsim {

namespace {

std::size_t
kindIndex(ChainHop kind)
{
    switch (kind) {
      case ChainHop::Up: return 0;
      case ChainHop::Down: return 1;
      case ChainHop::Wrap: return 2;
      case ChainHop::Host: return 3;
      case ChainHop::Local:
        break;
    }
    panic("ChainSwitch: Local is not a port kind");
}

}  // namespace

ChainSwitch::ChainSwitch(Kernel &kernel, HmcDevice &dev, std::string name,
                         const ChainRouteTable &routes,
                         const ChainRoutingPolicy &policy,
                         const ChainParams &params)
    : Component(kernel, &dev, std::move(name)), dev_(dev), routes_(routes),
      policy_(policy), params_(params)
{
    for (auto &kind : ports_)
        kind.resize(dev_.numLinks());
    if (Observability *o = kernel.obs()) {
        tracer_ = o->fullTracer();
        prof_ = o->profiler();
        obsMetrics_.bind(o->metricsRegistry(), path());
        obsMetrics_.counter("fwd_requests", &fwdRequests_);
        obsMetrics_.counter("fwd_responses", &fwdResponses_);
        obsMetrics_.counter("fwd_flits", &fwdFlits_);
        obsMetrics_.counter("local_injects", &localInjects_);
        obsMetrics_.counter("queue_full_stalls", &queueFullStalls_);
        obsMetrics_.counter("rx_hol_stalls", &rxHolStalls_);
        obsMetrics_.counter("adaptive_deviations", &adaptiveDeviations_);
        obsMetrics_.counter("misroutes", &misroutes_);
        obsMetrics_.counter("routed_ejects", &routedEjects_);
        // Occupancy gauges feeding the congestion heatmaps: total
        // forward-queue flits, plus a per-kind split so a hotspot's
        // direction is visible.
        obsMetrics_.gauge("fwd_q_flits_now", [this] {
            double total = 0.0;
            for (const auto &kind : ports_)
                for (const Port &p : kind)
                    total += p.qFlits;
            return total;
        });
        static constexpr const char *kKindGauge[kPortKinds] = {
            "up_q_flits_now", "down_q_flits_now", "wrap_q_flits_now",
            "host_q_flits_now"};
        for (std::size_t k = 0; k < kPortKinds; ++k) {
            obsMetrics_.gauge(kKindGauge[k], [this, k] {
                double total = 0.0;
                for (const Port &p : ports_[k])
                    total += p.qFlits;
                return total;
            });
        }
    }
}

ChainSwitch::Port &
ChainSwitch::port(ChainHop kind, LinkId l)
{
    if (l >= dev_.numLinks())
        panic("ChainSwitch::port: link out of range");
    Port &p = ports_[kindIndex(kind)][l];
    if (!p.link)
        panic("ChainSwitch: cube " + std::to_string(cubeId()) +
              " routed a packet to an unwired " + toString(kind) +
              " port");
    return p;
}

void
ChainSwitch::setPort(ChainHop kind, LinkId l, SerdesLink *link,
                     LinkDir out_dir, bool consume_rx)
{
    if (l >= dev_.numLinks())
        panic("ChainSwitch::setPort: link out of range");
    Port &p = ports_[kindIndex(kind)][l];
    p.link = link;
    p.outDir = out_dir;
    if (consume_rx) {
        const LinkDir in_dir = out_dir == LinkDir::HostToCube
            ? LinkDir::CubeToHost
            : LinkDir::HostToCube;
        link->setOnRxAvailable(in_dir,
                               [this, kind, l] { drainInRx(kind, l); });
    }
}

ChainPortLoad
ChainSwitch::portLoad(ChainHop kind, LinkId l) const
{
    ChainPortLoad load;
    if (l >= dev_.numLinks())
        return load;
    const Port &p = ports_[kindIndex(kind)][l];
    if (!p.link)
        return load;
    load.wired = true;
    load.queuedFlits = p.qFlits;
    const std::uint32_t queued =
        static_cast<std::uint32_t>(p.q.size());
    load.queueFreePackets = queued >= params_.forwardQueuePackets
        ? 0
        : params_.forwardQueuePackets - queued;
    load.tokensInUse = p.link->tokensInUse(p.outDir);
    return load;
}

ChainRouteDecision
ChainSwitch::decide(LinkId l, const HmcPacket &pkt) const
{
    ChainPacketView view;
    view.toHost = pkt.isResponse();
    // Responses head for the entry cube of the host that issued them;
    // requests for their CUB field.
    view.dest = view.toHost ? routes_.hostEntry(pkt.host) : pkt.cube;
    view.misroutes = pkt.chainMisroutes;
    view.dirLock = pkt.chainDirLock;
    return policy_.route(cubeId(), view, l, *this);
}

void
ChainSwitch::commit(const ChainRouteDecision &d, const HmcPacketPtr &pkt)
{
    switch (d.hop) {
      case ChainHop::Up: routeUp_.inc(); break;
      case ChainHop::Down: routeDown_.inc(); break;
      case ChainHop::Wrap: routeWrap_.inc(); break;
      case ChainHop::Host: routeHost_.inc(); break;
      case ChainHop::Local: break;
    }
    if (d.deviated)
        adaptiveDeviations_.inc();
    if (d.misrouted) {
        misroutes_.inc();
        ++pkt->chainMisroutes;
    }
    pkt->chainDirLock = d.dirLock;
    if (tracer_ && tracer_->wants(*pkt))
        tracer_->record(now(), *pkt, TraceStage::ChainForward, cubeId(),
                        static_cast<std::uint32_t>(d.hop));
}

bool
ChainSwitch::tryForward(LinkId l, const HmcPacketPtr &pkt)
{
    const ChainRouteDecision d = decide(l, *pkt);
    if (d.hop == ChainHop::Local)
        panic("ChainSwitch::tryForward: packet is local to cube " +
              std::to_string(cubeId()));
    if (!enqueue(d.hop, l, pkt))
        return false;
    commit(d, pkt);
    return true;
}

void
ChainSwitch::scheduleKick(Port &p, Tick at)
{
    if (p.kickScheduled)
        return;
    p.kickScheduled = true;
    kernel().scheduleAt(at, [this, &p] {
        p.kickScheduled = false;
        pump(p);
    });
}

bool
ChainSwitch::enqueue(ChainHop kind, LinkId l, const HmcPacketPtr &pkt)
{
    Port &p = port(kind, l);
    if (p.q.size() >= params_.forwardQueuePackets) {
        queueFullStalls_.inc();
        return false;
    }
    // Store-and-forward: the packet was fully received upstream; it
    // traverses the switch in passThroughLatency and then competes for
    // the output link's tokens.
    p.q.push_back(Pending{now() + params_.passThroughLatency, pkt, true});
    p.qFlits += pkt->flits();
    scheduleKick(p, p.q.back().readyAt);
    return true;
}

void
ChainSwitch::pump(Port &p)
{
    bool popped = false;
    while (!p.q.empty()) {
        Pending &head = p.q.front();
        if (head.readyAt > now()) {
            scheduleKick(p, head.readyAt);
            break;
        }
        const std::uint32_t flits = head.pkt->flits();
        if (!p.link->canSend(p.outDir, flits))
            break;  // resumed by the link's tokens-free callback
        p.link->reserveTokens(p.outDir, flits);
        if (head.countHop) {
            if (head.pkt->isRequest()) {
                ++head.pkt->reqHops;
                fwdRequests_.inc();
            } else {
                ++head.pkt->respHops;
                fwdResponses_.inc();
            }
            fwdFlits_.inc(flits);
            // Transit energy lands on THIS cube: it drives the
            // outgoing wire and pays the switch buffering, wherever
            // the link object happens to live.
            if (probe_)
                probe_->record(PowerEvent::ChainForwardFlit, flits);
        }
        p.link->send(p.outDir, head.pkt);
        p.qFlits -= flits;
        p.q.pop_front();
        popped = true;
    }
    if (popped)
        kickSources();
}

void
ChainSwitch::pumpAll()
{
    for (auto &kind : ports_) {
        for (Port &p : kind) {
            if (p.link)
                pump(p);
        }
    }
}

bool
ChainSwitch::couldProgress(const ChainRouteDecision &d, LinkId l) const
{
    if (d.hop == ChainHop::Local)
        return true;  // checked against NoC credits by the caller
    const ChainPortLoad load = portLoad(d.hop, l);
    return load.wired && load.queueFreePackets > 0;
}

void
ChainSwitch::noteRxHolStall(Port &p, LinkDir in_dir, LinkId l)
{
    // The head could not move.  If anything queued behind it routes to
    // a *different* output that has space, this stall is head-of-line
    // blocking, not plain backpressure -- account it so saturation
    // studies can tell the two apart.  One count per blocked-head
    // episode: retry kicks on the same stuck head do not inflate it
    // (a new head -- this drain or the device's may have popped the
    // old one -- starts a new episode).
    const HmcPacketPtr &head = p.link->rxPeek(in_dir);
    if (p.holHead == head)
        return;
    const std::size_t waiting = p.link->rxQueued(in_dir);
    for (std::size_t i = 1; i < waiting; ++i) {
        const HmcPacketPtr &behind = p.link->rxPeekAt(in_dir, i);
        if (behind->isRequest() && behind->cube == cubeId()) {
            if (dev_.canInjectLocal(l, behind->flits())) {
                rxHolStalls_.inc();
                p.holHead = head;
                return;
            }
            continue;
        }
        if (couldProgress(decide(l, *behind), l)) {
            rxHolStalls_.inc();
            p.holHead = head;
            return;
        }
    }
}

void
ChainSwitch::drainInRx(ChainHop kind, LinkId l)
{
    ProfileScope ps(prof_, "chain");
    Port &p = port(kind, l);
    const LinkDir in_dir = p.outDir == LinkDir::HostToCube
        ? LinkDir::CubeToHost
        : LinkDir::HostToCube;
    while (p.link->rxAvailable(in_dir)) {
        const HmcPacketPtr &head = p.link->rxPeek(in_dir);
        if (head->isRequest() && head->cube == cubeId()) {
            // Pop before injecting, mirroring HmcDevice::drainLinkRx:
            // the RX token-refund event must be scheduled ahead of the
            // injection's events.
            if (!dev_.canInjectLocal(l, head->flits())) {
                noteRxHolStall(p, in_dir, l);
                return;  // onLocalInjectSpace retries
            }
            HmcPacketPtr pkt = p.link->rxPop(in_dir);
            if (!dev_.tryInjectLocal(l, pkt))
                panic("ChainSwitch: NoC credits vanished between "
                      "check and inject");
            localInjects_.inc();
            p.holHead.reset();  // the head moved: episode over
            continue;
        }
        const ChainRouteDecision d = decide(l, *head);
        if (!enqueue(d.hop, l, head)) {
            noteRxHolStall(p, in_dir, l);
            return;  // pump() kicks us when the queue drains
        }
        commit(d, head);
        p.link->rxPop(in_dir);
        p.holHead.reset();  // the head moved: episode over
    }
}

void
ChainSwitch::drainAllInRx()
{
    static constexpr ChainHop kKinds[] = {ChainHop::Up, ChainHop::Down,
                                          ChainHop::Wrap, ChainHop::Host};
    for (const ChainHop kind : kKinds) {
        for (LinkId l = 0; l < dev_.numLinks(); ++l) {
            if (ports_[kindIndex(kind)][l].link)
                drainInRx(kind, l);
        }
    }
}

void
ChainSwitch::kickSources()
{
    // Forward-queue space freed: upstream RX buffers may drain again.
    for (LinkId l = 0; l < dev_.numLinks(); ++l)
        dev_.kickLinkRx(l);
    drainAllInRx();
}

void
ChainSwitch::onLocalInjectSpace(LinkId)
{
    drainAllInRx();
}

bool
ChainSwitch::tryReserveEject(LinkId l, std::uint32_t flits)
{
    Port &p = port(routes_.towardHost(cubeId()), l);
    if (!p.link->canSend(p.outDir, flits))
        return false;
    p.link->reserveTokens(p.outDir, flits);
    return true;
}

void
ChainSwitch::ejectFromNoc(LinkId l, const HmcPacketPtr &pkt)
{
    // Locally generated response leaving its origin cube: not a
    // pass-through forward, so no hop count or transit energy here.
    Port &p = port(routes_.towardHost(cubeId()), l);
    p.link->send(p.outDir, pkt);
}

void
ChainSwitch::ejectRoutedFromNoc(LinkId l, const HmcPacketPtr &pkt)
{
    const ChainRouteDecision d = decide(l, *pkt);
    if (d.hop == ChainHop::Local)
        panic("ChainSwitch::ejectRoutedFromNoc: response routed Local");
    // Unconditional admission past the pass-through queue cap: the
    // NoC's switch allocation already committed this ejection, and the
    // overhang stays bounded by the hosts' outstanding-tag pools (the
    // only source of responses).  No pass-through latency: an origin
    // ejection models the same direct NoC-to-link hand-off as the
    // single-host path, just behind a per-packet route decision.
    Port &p = port(d.hop, l);
    p.q.push_back(Pending{now(), pkt, false});
    p.qFlits += pkt->flits();
    routedEjects_.inc();
    commit(d, pkt);
    pump(p);
}

void
ChainSwitch::reportOwnStats(std::map<std::string, double> &out) const
{
    out[statName("fwd_requests")] =
        static_cast<double>(fwdRequests_.value());
    out[statName("fwd_responses")] =
        static_cast<double>(fwdResponses_.value());
    out[statName("fwd_flits")] = static_cast<double>(fwdFlits_.value());
    out[statName("local_injects")] =
        static_cast<double>(localInjects_.value());
    out[statName("queue_full_stalls")] =
        static_cast<double>(queueFullStalls_.value());
    out[statName("rx_hol_stalls")] =
        static_cast<double>(rxHolStalls_.value());
    out[statName("route_up")] = static_cast<double>(routeUp_.value());
    out[statName("route_down")] = static_cast<double>(routeDown_.value());
    out[statName("route_wrap")] = static_cast<double>(routeWrap_.value());
    out[statName("route_host")] = static_cast<double>(routeHost_.value());
    out[statName("routed_ejects")] =
        static_cast<double>(routedEjects_.value());
    out[statName("adaptive_deviations")] =
        static_cast<double>(adaptiveDeviations_.value());
    out[statName("misroutes")] = static_cast<double>(misroutes_.value());
}

void
ChainSwitch::resetOwnStats()
{
    fwdRequests_.reset();
    fwdResponses_.reset();
    fwdFlits_.reset();
    localInjects_.reset();
    queueFullStalls_.reset();
    rxHolStalls_.reset();
    routeUp_.reset();
    routeDown_.reset();
    routeWrap_.reset();
    routeHost_.reset();
    routedEjects_.reset();
    adaptiveDeviations_.reset();
    misroutes_.reset();
}

}  // namespace hmcsim
