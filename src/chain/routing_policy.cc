#include "chain/routing_policy.h"

#include "common/log.h"

namespace hmcsim {

ChainRoutingMode
chainRoutingFromString(const std::string &s)
{
    if (s == "static")
        return ChainRoutingMode::Static;
    if (s == "adaptive")
        return ChainRoutingMode::Adaptive;
    fatal("unknown chain routing '" + s + "' (expected static|adaptive)");
}

std::string
toString(ChainRoutingMode m)
{
    switch (m) {
      case ChainRoutingMode::Static: return "static";
      case ChainRoutingMode::Adaptive: return "adaptive";
    }
    return "?";
}

ChainRouteDecision
StaticChainRouting::route(CubeId at, const ChainPacketView &pkt, LinkId,
                          const ChainLoadProvider &) const
{
    ChainRouteDecision d;
    d.hop = pkt.toHost ? routes_.towardEntry(at, pkt.dest)
                       : routes_.next(at, pkt.dest);
    return d;
}

AdaptiveChainRouting::AdaptiveChainRouting(
    const ChainRouteTable &routes, const AdaptiveRoutingParams &params)
    : ChainRoutingPolicy(routes), params_(params)
{
}

ChainRouteDecision
AdaptiveChainRouting::followLock(CubeId at, const ChainPacketView &pkt) const
{
    // A misrouted packet holds its rotational direction so downstream
    // minimal routing does not bounce it straight back into the
    // congested port it was steered around.
    ChainRouteDecision d;
    d.dirLock = pkt.dirLock;
    if (pkt.toHost && at == pkt.dest) {
        // Arrived at the issuing host's entry cube: eject there.
        d.hop = routes_.attachHop(pkt.dest);
        return d;
    }
    d.hop = pkt.dirLock == kChainDirCw ? routes_.cwHop(at)
                                       : routes_.ccwHop(at);
    return d;
}

ChainRouteDecision
AdaptiveChainRouting::route(CubeId at, const ChainPacketView &pkt,
                            LinkId lane,
                            const ChainLoadProvider &loads) const
{
    const CubeId dest = pkt.dest;
    ChainRouteDecision d;
    if (!pkt.toHost && at == dest) {
        d.hop = ChainHop::Local;
        return d;
    }
    if (pkt.toHost && at == dest) {
        // Already at the issuing host's entry cube: the only way out
        // is its attachment port, whatever direction the response
        // arrived from.
        d.hop = routes_.attachHop(dest);
        return d;
    }
    const ChainHop preferred = pkt.toHost
        ? routes_.towardEntry(at, dest)
        : routes_.next(at, pkt.dest);
    // Only rings have more than one path between two cubes; daisy
    // chains and stars fall through to the static table.
    if (routes_.topology() != ChainTopology::Ring) {
        d.hop = preferred;
        return d;
    }
    if (pkt.dirLock != kChainDirNone)
        return followLock(at, pkt);

    const std::uint32_t cw = routes_.cwDistance(at, dest);
    const std::uint32_t ccw = routes_.ccwDistance(at, dest);
    const bool preferred_is_cw = preferred == routes_.cwHop(at);
    const ChainHop other =
        preferred_is_cw ? routes_.ccwHop(at) : routes_.cwHop(at);

    const ChainPortLoad pref_load =
        loads.portLoad(preferred, lane);
    const ChainPortLoad other_load = loads.portLoad(other, lane);
    d.hop = preferred;
    if (!pref_load.wired || !other_load.wired)
        return d;

    const std::uint32_t pref_score = pref_load.score();
    const std::uint32_t other_score = other_load.score();
    const bool other_wins =
        other_score + params_.thresholdFlits < pref_score;

    if (cw == ccw) {
        // Genuine minimal tie: either direction is shortest, so
        // switching needs no direction lock -- one step shortens the
        // taken side and downstream minimal routing keeps going.
        if (other_wins) {
            d.hop = other;
            d.deviated = true;
        }
        return d;
    }

    // Single minimal direction.  Consider the long way only under
    // severe congestion, within the per-packet misroute budget.
    if (params_.maxMisroutes == 0 || pkt.misroutes >= params_.maxMisroutes)
        return d;
    if (pref_score < params_.misrouteThresholdFlits || !other_wins)
        return d;
    d.hop = other;
    d.misrouted = true;
    d.dirLock = preferred_is_cw ? kChainDirCcw : kChainDirCw;
    return d;
}

std::unique_ptr<ChainRoutingPolicy>
makeChainRoutingPolicy(ChainRoutingMode mode, const ChainRouteTable &routes,
                       const AdaptiveRoutingParams &params)
{
    switch (mode) {
      case ChainRoutingMode::Static:
        return std::make_unique<StaticChainRouting>(routes);
      case ChainRoutingMode::Adaptive:
        return std::make_unique<AdaptiveChainRouting>(routes, params);
    }
    panic("makeChainRoutingPolicy: invalid mode");
}

}  // namespace hmcsim
