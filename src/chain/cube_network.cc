#include "chain/cube_network.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

CubeNetwork::CubeNetwork(Kernel &kernel, Component *parent, std::string name,
                         const HmcConfig &cfg)
    : Component(kernel, parent, std::move(name)), cfg_(cfg),
      routes_(chainTopologyFromString(cfg_.chain.topology),
              cfg_.chain.numCubes),
      mode_(chainRoutingFromString(cfg_.chain.routing))
{
    cfg_.validate();
    AdaptiveRoutingParams ap;
    ap.thresholdFlits = cfg_.chain.adaptiveThresholdFlits;
    ap.misrouteThresholdFlits = cfg_.chain.adaptiveMisrouteThresholdFlits;
    ap.maxMisroutes = cfg_.chain.adaptiveMaxMisroutes;
    policy_ = makeChainRoutingPolicy(mode_, routes_, ap);
    const std::uint32_t n = cfg_.chain.numCubes;

    for (CubeId c = 0; c < n; ++c) {
        cubes_.push_back(std::make_unique<HmcDevice>(
            kernel, this, "hmc" + std::to_string(c), cfg_, c));
    }

    if (n > 1 && routes_.topology() != ChainTopology::Star)
        wireChain();
}

void
CubeNetwork::wireChain()
{
    const std::uint32_t n = numCubes();
    const bool ring = routes_.topology() == ChainTopology::Ring;

    if (ring) {
        const SerdesLink::Params lp = linkParamsFrom(cfg_, 0xABCDEFull);
        for (LinkId l = 0; l < cfg_.numLinks; ++l) {
            // Orientation: HostToCube runs cube 0 -> cube N-1.
            wrapLinks_.push_back(std::make_unique<SerdesLink>(
                kernel(), this, "wrap" + std::to_string(l), l, lp));
            wrapLinks_.back()->setEndpointMode(LinkEndpointMode::PassThrough);
            // Attribute wrap SerDes energy like cube-owned cables: to
            // the cube on the downstream side of the hop (cube N-1).
            if (PowerModel *pm = cubes_[n - 1]->powerModel())
                wrapLinks_.back()->setPowerProbe(pm);
        }
        // Thermal throttling must not leave the wrap hop at full
        // speed while every cube-owned hop is stretched: follow the
        // deeper of the two endpoint cubes' throttle levels.
        for (CubeId c : {CubeId{0}, static_cast<CubeId>(n - 1)}) {
            if (PowerModel *pm = cubes_[c]->powerModel()) {
                HmcDevice *dev = cubes_[c].get();
                pm->setThrottleApplier([this, dev](double s) {
                    dev->applyThrottle(s);
                    applyWrapThrottle();
                });
            }
        }
    }

    for (CubeId c = 0; c < n; ++c) {
        switches_.push_back(std::make_unique<ChainSwitch>(
            kernel(), *cubes_[c], "fwd", routes_, *policy_, cfg_.chain));
        ChainSwitch *sw = switches_.back().get();
        if (PowerModel *pm = cubes_[c]->powerModel())
            sw->setPowerProbe(pm);
        HmcDevice *dev = cubes_[c].get();
        dev->setForwarder([sw](LinkId l, const HmcPacketPtr &pkt) {
            return sw->tryForward(l, pkt);
        });
        dev->setInjectSpaceHook(
            [sw](LinkId l) { sw->onLocalInjectSpace(l); });
    }

    for (CubeId c = 0; c < n; ++c) {
        ChainSwitch *sw = switches_[c].get();
        for (LinkId l = 0; l < cfg_.numLinks; ++l) {
            // Up: this cube's own links.  The switch transmits
            // transiting responses on them; their reverse-direction RX
            // is drained by the device (cube 0) or the upstream
            // switch, never by this one.
            sw->setPort(ChainHop::Up, l, &cubes_[c]->link(l),
                        LinkDir::CubeToHost, /*consume_rx=*/false);
            if (c > 0)
                cubes_[c]->link(l).setEndpointMode(
                    LinkEndpointMode::PassThrough);

            // Down: the next cube's links; this switch drains their
            // CubeToHost RX (responses and counter-clockwise requests
            // coming back up).
            if (c + 1 < n)
                sw->setPort(ChainHop::Down, l, &cubes_[c + 1]->link(l),
                            LinkDir::HostToCube, /*consume_rx=*/true);

            // Wrap: the ring-closing links.
            if (ring && c == 0)
                sw->setPort(ChainHop::Wrap, l, wrapLinks_[l].get(),
                            LinkDir::HostToCube, /*consume_rx=*/true);
            if (ring && c == n - 1)
                sw->setPort(ChainHop::Wrap, l, wrapLinks_[l].get(),
                            LinkDir::CubeToHost, /*consume_rx=*/true);
        }

        // Ring cubes on the far side eject local responses down/around
        // instead of retracing the request path.
        if (routes_.towardHost(c) != ChainHop::Up) {
            HmcDevice *dev = cubes_[c].get();
            for (LinkId l = 0; l < cfg_.numLinks; ++l) {
                Network::EndpointOps ops;
                ops.tryReserve = [sw, l](std::uint32_t flits) {
                    return sw->tryReserveEject(l, flits);
                };
                ops.deliver = [sw, l](const NocMessage &msg) {
                    auto pkt =
                        std::static_pointer_cast<HmcPacket>(msg.payload);
                    sw->ejectFromNoc(l, pkt);
                };
                ops.onInjectSpace = [dev, sw, l] {
                    dev->kickLinkRx(l);
                    sw->onLocalInjectSpace(l);
                };
                dev->network().rewireEndpoint(dev->linkEndpoint(l),
                                              std::move(ops));
            }
        }
    }

    combineTokenCallbacks();
}

void
CubeNetwork::combineTokenCallbacks()
{
    // Several producers can share one link direction (NoC ejection +
    // pass-through pump); freed tokens must wake all of them.  The
    // kicks are pure retries, so over-notifying is safe.
    const std::uint32_t n = numCubes();
    for (CubeId c = 0; c < n; ++c) {
        for (LinkId l = 0; l < cfg_.numLinks; ++l) {
            SerdesLink &lk = cubes_[c]->link(l);
            HmcDevice *dev = cubes_[c].get();
            ChainSwitch *sw = switches_[c].get();
            ChainSwitch *up_sw = c > 0 ? switches_[c - 1].get() : nullptr;
            HmcDevice *up_dev = c > 0 ? cubes_[c - 1].get() : nullptr;
            // CubeToHost: this cube's ejection and Up-forwarding.
            lk.setOnTokensFree(LinkDir::CubeToHost, [dev, sw, l] {
                dev->kickEject(l);
                sw->pumpAll();
            });
            // HostToCube: the upstream switch's Down-forwarding and,
            // on rings, the upstream cube's rewired ejection.  Cube
            // 0's upstream is the polling host controller.
            if (up_sw) {
                lk.setOnTokensFree(LinkDir::HostToCube,
                                   [up_dev, up_sw, l] {
                    up_dev->kickEject(l);
                    up_sw->pumpAll();
                });
            }
        }
    }
    for (LinkId l = 0; l < static_cast<LinkId>(wrapLinks_.size()); ++l) {
        SerdesLink &lk = *wrapLinks_[l];
        HmcDevice *dev0 = cubes_.front().get();
        ChainSwitch *sw0 = switches_.front().get();
        HmcDevice *devN = cubes_.back().get();
        ChainSwitch *swN = switches_.back().get();
        lk.setOnTokensFree(LinkDir::HostToCube, [dev0, sw0, l] {
            dev0->kickEject(l);
            sw0->pumpAll();
        });
        lk.setOnTokensFree(LinkDir::CubeToHost, [devN, swN, l] {
            devN->kickEject(l);
            swN->pumpAll();
        });
    }
}

void
CubeNetwork::applyWrapThrottle()
{
    double slowdown = 1.0;
    for (const HmcDevice *dev : {cubes_.front().get(), cubes_.back().get()}) {
        if (const PowerModel *pm = dev->powerModel())
            slowdown = std::max(slowdown, pm->slowdown());
    }
    for (auto &lk : wrapLinks_)
        lk->setThrottle(slowdown);
}

HmcDevice &
CubeNetwork::cube(CubeId c)
{
    if (c >= cubes_.size())
        panic("CubeNetwork::cube: cube out of range");
    return *cubes_[c];
}

ChainSwitch *
CubeNetwork::switchAt(CubeId c)
{
    if (c >= cubes_.size())
        panic("CubeNetwork::switchAt: cube out of range");
    return c < switches_.size() ? switches_[c].get() : nullptr;
}

SerdesLink &
CubeNetwork::hostLink(LinkId l)
{
    if (l >= cfg_.numLinks)
        panic("CubeNetwork::hostLink: link out of range");
    if (routes_.topology() == ChainTopology::Star)
        return cube(l % numCubes()).link(l);
    return cube(0).link(l);
}

CubeId
CubeNetwork::hostLinkCube(LinkId l) const
{
    if (l >= cfg_.numLinks)
        panic("CubeNetwork::hostLinkCube: link out of range");
    if (routes_.topology() == ChainTopology::Star)
        return l % numCubes();
    return kCubeAll;
}

double
CubeNetwork::bisectionBandwidthGBs() const
{
    return routes_.bisectionLinkCount() *
        cfg_.linkBandwidthGBsPerDirection();
}

std::uint64_t
CubeNetwork::totalRequestsServed() const
{
    std::uint64_t total = 0;
    for (const auto &c : cubes_)
        total += c->totalRequestsServed();
    return total;
}

}  // namespace hmcsim
