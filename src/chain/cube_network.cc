#include "chain/cube_network.h"

#include <algorithm>

#include "common/log.h"
#include "sim/kernel.h"

namespace hmcsim {

CubeNetwork::CubeNetwork(Kernel &kernel, Component *parent, std::string name,
                         const HmcConfig &cfg,
                         std::vector<CubeId> host_entries)
    : Component(kernel, parent, std::move(name)), cfg_(cfg),
      routes_(chainTopologyFromString(cfg_.chain.topology),
              cfg_.chain.numCubes, std::move(host_entries)),
      mode_(chainRoutingFromString(cfg_.chain.routing))
{
    cfg_.validate();
    AdaptiveRoutingParams ap;
    ap.thresholdFlits = cfg_.chain.adaptiveThresholdFlits;
    ap.misrouteThresholdFlits = cfg_.chain.adaptiveMisrouteThresholdFlits;
    ap.maxMisroutes = cfg_.chain.adaptiveMaxMisroutes;
    policy_ = makeChainRoutingPolicy(mode_, routes_, ap);
    const std::uint32_t n = cfg_.chain.numCubes;

    for (CubeId c = 0; c < n; ++c) {
        cubes_.push_back(std::make_unique<HmcDevice>(
            kernel, this, "hmc" + std::to_string(c), cfg_, c));
    }
    hostLinks_.resize(routes_.numHosts());

    if (n > 1 && routes_.topology() != ChainTopology::Star)
        wireChain();
}

void
CubeNetwork::wireChain()
{
    const std::uint32_t n = numCubes();
    const bool ring = routes_.topology() == ChainTopology::Ring;
    const bool multi_host = routes_.numHosts() > 1;

    if (ring) {
        const SerdesLink::Params lp = linkParamsFrom(cfg_, 0xABCDEFull);
        for (LinkId l = 0; l < cfg_.numLinks; ++l) {
            // Orientation: HostToCube runs cube 0 -> cube N-1.
            wrapLinks_.push_back(std::make_unique<SerdesLink>(
                kernel(), this, "wrap" + std::to_string(l), l, lp));
            wrapLinks_.back()->setEndpointMode(LinkEndpointMode::PassThrough);
            // Attribute wrap SerDes energy like cube-owned cables: to
            // the cube on the downstream side of the hop (cube N-1).
            if (PowerModel *pm = cubes_[n - 1]->powerModel())
                wrapLinks_.back()->setPowerProbe(pm);
        }
    }

    for (CubeId c = 0; c < n; ++c) {
        switches_.push_back(std::make_unique<ChainSwitch>(
            kernel(), *cubes_[c], "fwd", routes_, *policy_, cfg_.chain));
        ChainSwitch *sw = switches_.back().get();
        if (PowerModel *pm = cubes_[c]->powerModel())
            sw->setPowerProbe(pm);
        HmcDevice *dev = cubes_[c].get();
        dev->setForwarder([sw](LinkId l, const HmcPacketPtr &pkt) {
            return sw->tryForward(l, pkt);
        });
        dev->setInjectSpaceHook(
            [sw](LinkId l) { sw->onLocalInjectSpace(l); });
    }

    for (CubeId c = 0; c < n; ++c) {
        ChainSwitch *sw = switches_[c].get();
        for (LinkId l = 0; l < cfg_.numLinks; ++l) {
            // Up: this cube's own links.  The switch transmits
            // transiting responses on them; their reverse-direction RX
            // is drained by the device (cube 0) or the upstream
            // switch, never by this one.
            sw->setPort(ChainHop::Up, l, &cubes_[c]->link(l),
                        LinkDir::CubeToHost, /*consume_rx=*/false);
            if (c > 0)
                cubes_[c]->link(l).setEndpointMode(
                    LinkEndpointMode::PassThrough);

            // Down: the next cube's links; this switch drains their
            // CubeToHost RX (responses and counter-clockwise requests
            // coming back up).
            if (c + 1 < n)
                sw->setPort(ChainHop::Down, l, &cubes_[c + 1]->link(l),
                            LinkDir::HostToCube, /*consume_rx=*/true);

            // Wrap: the ring-closing links.
            if (ring && c == 0)
                sw->setPort(ChainHop::Wrap, l, wrapLinks_[l].get(),
                            LinkDir::HostToCube, /*consume_rx=*/true);
            if (ring && c == n - 1)
                sw->setPort(ChainHop::Wrap, l, wrapLinks_[l].get(),
                            LinkDir::CubeToHost, /*consume_rx=*/true);
        }

        if (multi_host) {
            // Responses can head for any host's entry cube, so every
            // cube's local ejection becomes a per-packet route through
            // the switch.  The NoC's switch allocation cannot see the
            // packet, so admission is unconditional; boundedness comes
            // from the hosts' tag pools (see ejectRoutedFromNoc).
            HmcDevice *dev = cubes_[c].get();
            for (LinkId l = 0; l < cfg_.numLinks; ++l) {
                Network::EndpointOps ops;
                ops.tryReserve = [](std::uint32_t) { return true; };
                ops.deliver = [sw, l](const NocMessage &msg) {
                    auto pkt =
                        std::static_pointer_cast<HmcPacket>(msg.payload);
                    sw->ejectRoutedFromNoc(l, pkt);
                };
                ops.onInjectSpace = [dev, sw, l] {
                    dev->kickLinkRx(l);
                    sw->onLocalInjectSpace(l);
                };
                dev->network().rewireEndpoint(dev->linkEndpoint(l),
                                              std::move(ops));
            }
        } else if (routes_.towardHost(c) != ChainHop::Up) {
            // Single-host ring cubes on the far side eject local
            // responses down/around instead of retracing the request
            // path.
            HmcDevice *dev = cubes_[c].get();
            for (LinkId l = 0; l < cfg_.numLinks; ++l) {
                Network::EndpointOps ops;
                ops.tryReserve = [sw, l](std::uint32_t flits) {
                    return sw->tryReserveEject(l, flits);
                };
                ops.deliver = [sw, l](const NocMessage &msg) {
                    auto pkt =
                        std::static_pointer_cast<HmcPacket>(msg.payload);
                    sw->ejectFromNoc(l, pkt);
                };
                ops.onInjectSpace = [dev, sw, l] {
                    dev->kickLinkRx(l);
                    sw->onLocalInjectSpace(l);
                };
                dev->network().rewireEndpoint(dev->linkEndpoint(l),
                                              std::move(ops));
            }
        }
    }

    wireHostLinks();
    combineTokenCallbacks();
    installThrottleAppliers();
}

void
CubeNetwork::wireHostLinks()
{
    for (HostId h = 0; h < routes_.numHosts(); ++h) {
        const CubeId entry = routes_.hostEntry(h);
        if (routes_.attachHop(entry) != ChainHop::Host)
            continue;  // the cube-0 host drives cube 0's own links
        // Decorrelate the CRC error stream per host like chained
        // cubes decorrelate theirs.
        const SerdesLink::Params lp =
            linkParamsFrom(cfg_, 0xB05Cull + h * 104729ull);
        ChainSwitch *sw = switches_[entry].get();
        for (LinkId l = 0; l < cfg_.numLinks; ++l) {
            hostLinks_[h].push_back(std::make_unique<SerdesLink>(
                kernel(), this,
                "host" + std::to_string(h) + "_link" + std::to_string(l),
                l, lp));
            SerdesLink *lk = hostLinks_[h].back().get();
            // Host-link SerDes energy lands on the entry cube, which
            // physically hosts the attachment PHY.
            if (PowerModel *pm = cubes_[entry]->powerModel())
                lk->setPowerProbe(pm);
            // The switch transmits responses to the host and drains
            // the request-direction RX (local injects + forwards).
            sw->setPort(ChainHop::Host, l, lk, LinkDir::CubeToHost,
                        /*consume_rx=*/true);
        }
    }
}

void
CubeNetwork::combineTokenCallbacks()
{
    // Several producers can share one link direction (NoC ejection +
    // pass-through pump); freed tokens must wake all of them.  The
    // kicks are pure retries, so over-notifying is safe.
    const std::uint32_t n = numCubes();
    for (CubeId c = 0; c < n; ++c) {
        for (LinkId l = 0; l < cfg_.numLinks; ++l) {
            SerdesLink &lk = cubes_[c]->link(l);
            HmcDevice *dev = cubes_[c].get();
            ChainSwitch *sw = switches_[c].get();
            ChainSwitch *up_sw = c > 0 ? switches_[c - 1].get() : nullptr;
            HmcDevice *up_dev = c > 0 ? cubes_[c - 1].get() : nullptr;
            // CubeToHost: this cube's ejection and Up-forwarding.
            lk.setOnTokensFree(LinkDir::CubeToHost, [dev, sw, l] {
                dev->kickEject(l);
                sw->pumpAll();
            });
            // HostToCube: the upstream switch's Down-forwarding and,
            // on rings, the upstream cube's rewired ejection.  Cube
            // 0's upstream is the polling host controller.
            if (up_sw) {
                lk.setOnTokensFree(LinkDir::HostToCube,
                                   [up_dev, up_sw, l] {
                    up_dev->kickEject(l);
                    up_sw->pumpAll();
                });
            }
        }
    }
    for (LinkId l = 0; l < static_cast<LinkId>(wrapLinks_.size()); ++l) {
        SerdesLink &lk = *wrapLinks_[l];
        HmcDevice *dev0 = cubes_.front().get();
        ChainSwitch *sw0 = switches_.front().get();
        HmcDevice *devN = cubes_.back().get();
        ChainSwitch *swN = switches_.back().get();
        lk.setOnTokensFree(LinkDir::HostToCube, [dev0, sw0, l] {
            dev0->kickEject(l);
            sw0->pumpAll();
        });
        lk.setOnTokensFree(LinkDir::CubeToHost, [devN, swN, l] {
            devN->kickEject(l);
            swN->pumpAll();
        });
    }
    for (HostId h = 0; h < hostLinks_.size(); ++h) {
        if (hostLinks_[h].empty())
            continue;
        ChainSwitch *sw = switches_[routes_.hostEntry(h)].get();
        for (auto &lk : hostLinks_[h]) {
            // CubeToHost: the entry switch's Host-port transmit.  The
            // HostToCube sender is the polling host controller, which
            // needs no callback.
            lk->setOnTokensFree(LinkDir::CubeToHost,
                                [sw] { sw->pumpAll(); });
        }
    }
}

void
CubeNetwork::installThrottleAppliers()
{
    // Thermal throttling must not leave network-owned links (ring wrap
    // hops, dedicated host attachments) at full speed while every
    // cube-owned hop is stretched.  Any cube whose throttle level
    // feeds such a link re-applies the aux-link throttles whenever its
    // own level changes.
    std::vector<CubeId> aux_cubes;
    if (!wrapLinks_.empty()) {
        aux_cubes.push_back(0);
        aux_cubes.push_back(numCubes() - 1);
    }
    for (HostId h = 0; h < hostLinks_.size(); ++h) {
        if (!hostLinks_[h].empty())
            aux_cubes.push_back(routes_.hostEntry(h));
    }
    std::sort(aux_cubes.begin(), aux_cubes.end());
    aux_cubes.erase(std::unique(aux_cubes.begin(), aux_cubes.end()),
                    aux_cubes.end());
    for (CubeId c : aux_cubes) {
        if (PowerModel *pm = cubes_[c]->powerModel()) {
            HmcDevice *dev = cubes_[c].get();
            pm->setThrottleApplier([this, dev](double s) {
                dev->applyThrottle(s);
                applyAuxLinkThrottle();
            });
        }
    }
}

void
CubeNetwork::applyAuxLinkThrottle()
{
    if (!wrapLinks_.empty()) {
        // The wrap hop follows the deeper of its two endpoint cubes.
        double slowdown = 1.0;
        for (const HmcDevice *dev :
             {cubes_.front().get(), cubes_.back().get()}) {
            if (const PowerModel *pm = dev->powerModel())
                slowdown = std::max(slowdown, pm->slowdown());
        }
        for (auto &lk : wrapLinks_)
            lk->setThrottle(slowdown);
    }
    for (HostId h = 0; h < hostLinks_.size(); ++h) {
        if (hostLinks_[h].empty())
            continue;
        const PowerModel *pm =
            cubes_[routes_.hostEntry(h)]->powerModel();
        const double slowdown = pm ? std::max(1.0, pm->slowdown()) : 1.0;
        for (auto &lk : hostLinks_[h])
            lk->setThrottle(slowdown);
    }
}

void
CubeNetwork::assignPartitions()
{
    if (!kernel().parallelEnabled())
        return;
    const std::uint32_t n = numCubes();
    auto part = [this](CubeId c) { return kernel().partition(c); };

    if (routes_.topology() == ChainTopology::Star) {
        // No pass-through fabric: the host (executing in cube 0's
        // partition) drives every cube-owned link's host end directly.
        for (CubeId c = 0; c < n; ++c) {
            for (LinkId l = 0; l < cfg_.numLinks; ++l) {
                SerdesLink &lk = cubes_[c]->link(l);
                lk.setPartitions(LinkDir::HostToCube, part(0), part(c));
                lk.setPartitions(LinkDir::CubeToHost, part(c), part(0));
            }
        }
        return;
    }

    for (CubeId c = 0; c < n; ++c) {
        // Cube c's own cables: upstream end at the host (c == 0, which
        // shares cube 0's partition) or the previous cube's switch.
        Partition *up = c == 0 ? part(0) : part(c - 1);
        for (LinkId l = 0; l < cfg_.numLinks; ++l) {
            SerdesLink &lk = cubes_[c]->link(l);
            lk.setPartitions(LinkDir::HostToCube, up, part(c));
            lk.setPartitions(LinkDir::CubeToHost, part(c), up);
        }
    }
    for (auto &lk : wrapLinks_) {
        // Ring closure; orientation per wireChain: HostToCube runs
        // cube 0 -> cube N-1.
        lk->setPartitions(LinkDir::HostToCube, part(0), part(n - 1));
        lk->setPartitions(LinkDir::CubeToHost, part(n - 1), part(0));
    }
    // Dedicated host links (multi-host): intentionally left
    // unassigned -- host h executes in its entry cube's partition, so
    // both ends of its links are partition-local already.
}

HmcDevice &
CubeNetwork::cube(CubeId c)
{
    if (c >= cubes_.size())
        panic("CubeNetwork::cube: cube out of range");
    return *cubes_[c];
}

ChainSwitch *
CubeNetwork::switchAt(CubeId c)
{
    if (c >= cubes_.size())
        panic("CubeNetwork::switchAt: cube out of range");
    return c < switches_.size() ? switches_[c].get() : nullptr;
}

SerdesLink &
CubeNetwork::hostLink(LinkId l, HostId h)
{
    if (l >= cfg_.numLinks)
        panic("CubeNetwork::hostLink: link out of range");
    if (h >= routes_.numHosts())
        panic("CubeNetwork::hostLink: host out of range");
    if (routes_.topology() == ChainTopology::Star)
        return cube(l % numCubes()).link(l);
    const CubeId entry = routes_.hostEntry(h);
    if (routes_.attachHop(entry) == ChainHop::Host)
        return *hostLinks_[h][l];
    return cube(entry).link(l);
}

CubeId
CubeNetwork::hostLinkCube(LinkId l, HostId h) const
{
    if (l >= cfg_.numLinks)
        panic("CubeNetwork::hostLinkCube: link out of range");
    if (h >= routes_.numHosts())
        panic("CubeNetwork::hostLinkCube: host out of range");
    if (routes_.topology() == ChainTopology::Star)
        return l % numCubes();
    return kCubeAll;
}

double
CubeNetwork::bisectionBandwidthGBs() const
{
    return routes_.bisectionLinkCount() *
        cfg_.linkBandwidthGBsPerDirection();
}

std::uint64_t
CubeNetwork::totalRequestsServed() const
{
    std::uint64_t total = 0;
    for (const auto &c : cubes_)
        total += c->totalRequestsServed();
    return total;
}

std::uint64_t
CubeNetwork::totalForwardedFlits() const
{
    std::uint64_t total = 0;
    for (const auto &sw : switches_)
        total += sw->forwardedFlits();
    return total;
}

std::uint64_t
CubeNetwork::bisectionFlitsSent(LinkDir dir) const
{
    const std::uint32_t n = numCubes();
    if (n < 2 || routes_.topology() == ChainTopology::Star)
        return 0;
    std::uint64_t flits = 0;
    for (LinkId l = 0; l < cfg_.numLinks; ++l)
        flits += cubes_[n / 2]->link(l).flitsSent(dir);
    for (const auto &lk : wrapLinks_)
        flits += lk->flitsSent(dir);
    return flits;
}

}  // namespace hmcsim
