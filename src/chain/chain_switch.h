/**
 * @file
 * Per-cube pass-through switch for multi-cube chaining.
 *
 * Packets whose CUB field does not match the local cube (and responses
 * transiting toward the host) are handed here by the cube's link layer.
 * The switch stores the fully received packet, waits the configured
 * pass-through latency, and re-transmits it on the policy-selected
 * output link under that link's token flow control.  A full forward
 * queue refuses the hand-off, which leaves the packet in the upstream
 * RX buffer holding its link tokens -- chaining the per-hop credits
 * into end-to-end backpressure.
 *
 * Output-port selection goes through a ChainRoutingPolicy: the static
 * policy replays the route table verbatim; the adaptive policy reads
 * this switch's live per-port telemetry (ChainLoadProvider) to pick
 * among minimal next-hops and, under severe congestion, to misroute a
 * bounded number of times per packet.  Decisions commit -- counters,
 * per-packet misroute budget, direction lock -- only when the chosen
 * output queue accepts the packet.
 *
 * Port classes (see ChainRouteTable): Up = this cube's own links toward
 * the host, Down = the next cube's links, Wrap = the ring-closing
 * links, Host = dedicated host-attachment links at a multi-host entry
 * cube.  On single-host ring cubes whose response route is not Up, the
 * cube's NoC link-ejection endpoints are rewired through ejectFromNoc()
 * so locally generated responses leave on the routed port directly; in
 * a multi-host fabric every cube's ejection goes through
 * ejectRoutedFromNoc() instead, which routes each response toward its
 * issuing host's entry cube per packet.
 */

#ifndef HMCSIM_CHAIN_CHAIN_SWITCH_H_
#define HMCSIM_CHAIN_CHAIN_SWITCH_H_

#include <array>
#include <deque>
#include <vector>

#include "chain/route_table.h"
#include "chain/routing_policy.h"
#include "hmc/hmc_device.h"
#include "hmc/serdes_link.h"
#include "obs/metrics.h"

namespace hmcsim {

class PacketTracer;
class SelfProfiler;

class ChainSwitch : public Component, public ChainLoadProvider
{
  public:
    ChainSwitch(Kernel &kernel, HmcDevice &dev, std::string name,
                const ChainRouteTable &routes,
                const ChainRoutingPolicy &policy,
                const ChainParams &params);

    CubeId cubeId() const { return dev_.cubeId(); }

    // ----- wiring (called by CubeNetwork before traffic flows) -----

    /**
     * Attach the output/input link for one port class and link lane.
     * @param out_dir direction this switch transmits on
     * @param consume_rx register this switch as the drainer of the
     *        reverse direction's RX buffer
     */
    void setPort(ChainHop kind, LinkId l, SerdesLink *link,
                 LinkDir out_dir, bool consume_rx);

    // ----- data path -----

    /**
     * Take a packet the cube's link layer cannot deliver locally.
     * @return false when the forward queue is full (retry on pump)
     */
    bool tryForward(LinkId l, const HmcPacketPtr &pkt);

    /** Retry pending transmissions on every output port. */
    void pumpAll();

    /** NoC injection credits freed: retry Local deliveries. */
    void onLocalInjectSpace(LinkId l);

    /** Reserve tokens for a locally ejected response (rewired NoC). */
    bool tryReserveEject(LinkId l, std::uint32_t flits);

    /** Transmit a locally ejected response (tokens already reserved). */
    void ejectFromNoc(LinkId l, const HmcPacketPtr &pkt);

    /**
     * Multi-host ejection: accept a locally generated response from
     * the NoC and queue it on the per-packet routed output port (its
     * issuing host's return direction).  Unlike ejectFromNoc the
     * output port is not known at switch-allocation time, so admission
     * is unconditional and the output queue is allowed to exceed the
     * pass-through depth; the overhang is bounded end-to-end by the
     * hosts' tag pools.  Origin ejections pay no pass-through latency
     * and count no chain hop, mirroring the single-host eject path.
     */
    void ejectRoutedFromNoc(LinkId l, const HmcPacketPtr &pkt);

    /** Hook the transit-energy probe (ChainForwardFlit events). */
    void setPowerProbe(PowerProbe *probe) { probe_ = probe; }

    // ----- telemetry (ChainLoadProvider) -----

    /** Live congestion snapshot of output port (kind, l). */
    ChainPortLoad portLoad(ChainHop kind, LinkId l) const override;

    // ----- statistics -----
    std::uint64_t forwardedRequests() const { return fwdRequests_.value(); }
    std::uint64_t forwardedResponses() const
    {
        return fwdResponses_.value();
    }
    std::uint64_t forwardedFlits() const { return fwdFlits_.value(); }
    std::uint64_t localInjects() const { return localInjects_.value(); }

    /** Adaptive choices of the non-preferred minimal direction. */
    std::uint64_t adaptiveDeviations() const
    {
        return adaptiveDeviations_.value();
    }

    /** Non-minimal (long-way-around) forwards committed here. */
    std::uint64_t misroutes() const { return misroutes_.value(); }

    /** Head-of-line blocking episodes: a stalled RX head wedging
     *  traffic behind it that could progress on a different output.
     *  Counted once per episode (re-drains of the same stuck head do
     *  not inflate the count). */
    std::uint64_t rxHolStalls() const { return rxHolStalls_.value(); }

  protected:
    void reportOwnStats(std::map<std::string, double> &out) const override;
    void resetOwnStats() override;

  private:
    struct Pending {
        Tick readyAt = 0;
        HmcPacketPtr pkt;
        /** False for origin ejections (multi-host routed eject):
         *  transmitting them is not a pass-through forward, so no hop
         *  count, forward counters or transit energy. */
        bool countHop = true;
    };

    struct Port {
        SerdesLink *link = nullptr;
        LinkDir outDir = LinkDir::HostToCube;
        std::deque<Pending> q;
        /** Flits across q (the policy's occupancy signal). */
        std::uint32_t qFlits = 0;
        bool kickScheduled = false;
        /** RX head whose head-of-line episode was already counted;
         *  a different (or popped) head starts a new episode. */
        HmcPacketPtr holHead;
    };

    static constexpr std::size_t kPortKinds = 4;  // Up, Down, Wrap, Host

    HmcDevice &dev_;
    const ChainRouteTable &routes_;
    const ChainRoutingPolicy &policy_;
    ChainParams params_;
    /** ports_[kind - 1][link]; kind Local has no port. */
    std::array<std::vector<Port>, kPortKinds> ports_;
    PowerProbe *probe_ = nullptr;

    Counter fwdRequests_;
    Counter fwdResponses_;
    Counter fwdFlits_;
    Counter localInjects_;
    Counter queueFullStalls_;
    Counter rxHolStalls_;
    Counter adaptiveDeviations_;
    Counter misroutes_;
    /** Committed route choices per output port class. */
    Counter routeUp_;
    Counter routeDown_;
    Counter routeWrap_;
    Counter routeHost_;
    /** Locally generated responses ejected through the routed
     *  multi-host path. */
    Counter routedEjects_;

    MetricSet obsMetrics_;
    PacketTracer *tracer_ = nullptr;
    SelfProfiler *prof_ = nullptr;

    Port &port(ChainHop kind, LinkId l);
    ChainRouteDecision decide(LinkId l, const HmcPacket &pkt) const;
    void commit(const ChainRouteDecision &d, const HmcPacketPtr &pkt);
    bool enqueue(ChainHop kind, LinkId l, const HmcPacketPtr &pkt);
    void scheduleKick(Port &p, Tick at);
    void pump(Port &p);
    void drainInRx(ChainHop kind, LinkId l);
    void drainAllInRx();
    void kickSources();
    /** Count a drain stopped by HOL blocking if any packet waiting
     *  behind the head could progress on a different output; at most
     *  once per blocked-head episode. */
    void noteRxHolStall(Port &p, LinkDir in_dir, LinkId l);
    bool couldProgress(const ChainRouteDecision &d, LinkId l) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_CHAIN_CHAIN_SWITCH_H_
