/**
 * @file
 * Pluggable chain routing: the policy layer between the static
 * ChainRouteTable and the per-cube ChainSwitch.
 *
 * Two policies exist:
 *
 *   static    (default) the packet follows the route table verbatim --
 *             bit-identical to the pre-policy behaviour.
 *   adaptive  minimal adaptive routing in the Dally credit/occupancy
 *             style: when a destination has more than one minimal
 *             next-hop (ring ties), the switch picks the output port
 *             with the lower live congestion score (forward-queue
 *             occupancy plus consumed link tokens, both in flits) --
 *             with a hysteresis threshold so a zero-load network takes
 *             exactly the static paths.  Under severe congestion the
 *             policy may additionally *misroute* a bounded number of
 *             times per packet: send it the long way around the ring,
 *             direction-locked so downstream cubes do not bounce it
 *             back into the hotspot.
 *
 * The policy is consulted per packet at enqueue time and sees live
 * telemetry through ChainLoadProvider (implemented by ChainSwitch).
 * Decisions are pure; the switch commits the side effects (route-choice
 * counters, per-packet misroute budget, direction lock) only once the
 * chosen output queue accepts the packet, so a refused hand-off can be
 * re-decided later under fresher telemetry.
 */

#ifndef HMCSIM_CHAIN_ROUTING_POLICY_H_
#define HMCSIM_CHAIN_ROUTING_POLICY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "chain/route_table.h"

namespace hmcsim {

/** Which ChainRoutingPolicy implementation a chain runs. */
enum class ChainRoutingMode : unsigned {
    Static = 0,
    Adaptive,
};

ChainRoutingMode chainRoutingFromString(const std::string &s);
std::string toString(ChainRoutingMode m);

/** Packet direction-lock values (HmcPacket::chainDirLock). */
constexpr std::uint8_t kChainDirNone = 0;
/** Committed clockwise (increasing cube ids / Down / Wrap at N-1). */
constexpr std::uint8_t kChainDirCw = 1;
/** Committed counter-clockwise (decreasing ids / Up / Wrap at 0). */
constexpr std::uint8_t kChainDirCcw = 2;

/** Live congestion snapshot of one switch output port. */
struct ChainPortLoad {
    /** False when no link is wired on this (kind, lane). */
    bool wired = false;
    /** Flits sitting in the forward queue. */
    std::uint32_t queuedFlits = 0;
    /** Free packet slots left in the forward queue. */
    std::uint32_t queueFreePackets = 0;
    /** Output-direction link tokens currently consumed (backpressure). */
    std::uint32_t tokensInUse = 0;

    /** Scalar congestion score in flits (queue + in-flight tokens). */
    std::uint32_t score() const { return queuedFlits + tokensInUse; }
};

/** Telemetry source the policy reads; implemented by ChainSwitch. */
class ChainLoadProvider
{
  public:
    virtual ~ChainLoadProvider() = default;

    virtual ChainPortLoad portLoad(ChainHop kind, LinkId l) const = 0;
};

/** The routing-relevant slice of a packet's state. */
struct ChainPacketView {
    /** Destination cube: the CUB field of a request, or the issuing
     *  host's entry cube for a response (toHost). */
    CubeId dest = 0;
    /** True for responses transiting toward their issuing host. */
    bool toHost = false;
    /** Non-minimal deviations this packet already took. */
    std::uint8_t misroutes = 0;
    /** Direction lock from an earlier misroute (kChainDir*). */
    std::uint8_t dirLock = kChainDirNone;
};

/** One routing decision plus the packet state it implies. */
struct ChainRouteDecision {
    ChainHop hop = ChainHop::Local;
    /** Took the non-preferred minimal direction (ring tie). */
    bool deviated = false;
    /** Took a non-minimal direction (long way around the ring). */
    bool misrouted = false;
    /** Direction lock to stamp on the packet when committed. */
    std::uint8_t dirLock = kChainDirNone;
};

class ChainRoutingPolicy
{
  public:
    explicit ChainRoutingPolicy(const ChainRouteTable &routes)
        : routes_(routes)
    {
    }

    virtual ~ChainRoutingPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Pick the output port for a packet at cube @p at, lane @p lane.
     * Pure: commits nothing; the caller applies the decision's side
     * effects once the chosen queue accepts the packet.
     */
    virtual ChainRouteDecision route(CubeId at, const ChainPacketView &pkt,
                                     LinkId lane,
                                     const ChainLoadProvider &loads)
        const = 0;

    const ChainRouteTable &routes() const { return routes_; }

  protected:
    const ChainRouteTable &routes_;
};

/** Route-table lookup; bit-identical to the pre-policy switch. */
class StaticChainRouting : public ChainRoutingPolicy
{
  public:
    using ChainRoutingPolicy::ChainRoutingPolicy;

    const char *name() const override { return "static"; }

    ChainRouteDecision route(CubeId at, const ChainPacketView &pkt,
                             LinkId lane, const ChainLoadProvider &loads)
        const override;
};

/** Tunables of the adaptive policy (hmc.chain_adaptive_* knobs). */
struct AdaptiveRoutingParams {
    /**
     * Congestion advantage (in flits) the alternate direction must
     * have before the policy deviates from the static choice.  The
     * hysteresis that keeps a zero-load adaptive chain on exactly the
     * static paths.
     */
    std::uint32_t thresholdFlits = 8;

    /**
     * Absolute congestion score (flits) of the preferred minimal port
     * before a non-minimal misroute is even considered.
     */
    std::uint32_t misrouteThresholdFlits = 48;

    /** Non-minimal deviations allowed per packet; 0 disables. */
    std::uint32_t maxMisroutes = 1;
};

/**
 * Occupancy/backpressure-driven minimal adaptive routing with bounded,
 * direction-locked misroutes.  Only rings offer path diversity; on
 * daisy chains and stars the policy degenerates to the static table.
 */
class AdaptiveChainRouting : public ChainRoutingPolicy
{
  public:
    AdaptiveChainRouting(const ChainRouteTable &routes,
                         const AdaptiveRoutingParams &params);

    const char *name() const override { return "adaptive"; }

    const AdaptiveRoutingParams &params() const { return params_; }

    ChainRouteDecision route(CubeId at, const ChainPacketView &pkt,
                             LinkId lane, const ChainLoadProvider &loads)
        const override;

  private:
    AdaptiveRoutingParams params_;

    ChainRouteDecision followLock(CubeId at,
                                  const ChainPacketView &pkt) const;
};

/** Build the policy a ChainParams-configured network asked for. */
std::unique_ptr<ChainRoutingPolicy>
makeChainRoutingPolicy(ChainRoutingMode mode, const ChainRouteTable &routes,
                       const AdaptiveRoutingParams &params);

}  // namespace hmcsim

#endif  // HMCSIM_CHAIN_ROUTING_POLICY_H_
