#include "chain/route_table.h"

#include <algorithm>

#include "common/log.h"

namespace hmcsim {

std::string
toString(ChainHop h)
{
    switch (h) {
      case ChainHop::Local: return "local";
      case ChainHop::Up: return "up";
      case ChainHop::Down: return "down";
      case ChainHop::Wrap: return "wrap";
      case ChainHop::Host: return "host";
    }
    return "?";
}

ChainRouteTable::ChainRouteTable(ChainTopology topo, std::uint32_t num_cubes,
                                 std::vector<CubeId> host_entries)
    : topo_(topo), numCubes_(num_cubes),
      hostEntries_(std::move(host_entries))
{
    if (num_cubes == 0)
        fatal("chain route table: need at least one cube");
    if (hostEntries_.empty())
        hostEntries_.push_back(0);
    for (CubeId e : hostEntries_) {
        if (e >= numCubes_)
            fatal("chain route table: host entry cube " +
                  std::to_string(e) + " beyond num_cubes");
        if (std::count(hostEntries_.begin(), hostEntries_.end(), e) != 1)
            fatal("chain route table: two hosts share entry cube " +
                  std::to_string(e));
    }
    if (hostEntries_.size() > 1 && topo_ == ChainTopology::Star)
        fatal("chain route table: star topologies cannot route "
              "responses between cubes; multi-host needs daisy or ring");

    const std::uint32_t n = numCubes_;
    entryHost_.assign(n, kHostNone);
    for (HostId h = 0; h < hostEntries_.size(); ++h)
        entryHost_[hostEntries_[h]] = h;
    next_.resize(static_cast<std::size_t>(n) * n, ChainHop::Local);

    for (CubeId at = 0; at < n; ++at) {
        for (CubeId dest = 0; dest < n; ++dest) {
            if (at == dest) {
                next_[at * n + dest] = ChainHop::Local;
                continue;
            }
            switch (topo_) {
              case ChainTopology::Star:
                // Every cube is host-attached; a packet for another
                // cube should never be inside this one (next() panics
                // if queried).
                break;
              case ChainTopology::Daisy:
                next_[at * n + dest] =
                    dest > at ? ChainHop::Down : ChainHop::Up;
                break;
              case ChainTopology::Ring: {
                // Shortest direction, ties clockwise (increasing ids).
                const std::uint32_t cw = (dest + n - at) % n;
                const std::uint32_t ccw = n - cw;
                if (cw <= ccw)
                    next_[at * n + dest] =
                        at == n - 1 ? ChainHop::Wrap : ChainHop::Down;
                else
                    next_[at * n + dest] =
                        at == 0 ? ChainHop::Wrap : ChainHop::Up;
                break;
              }
            }
        }
    }

    // Responses head for the entry cube of the host that issued them
    // and eject on its attachment port there.  Ties break toward the
    // counter-clockwise (Up) side, matching the legacy toward-cube-0
    // table when host 0 sits at entry 0.
    towardEntry_.resize(static_cast<std::size_t>(hostEntries_.size()) * n,
                        ChainHop::Up);
    for (HostId h = 0; h < hostEntries_.size(); ++h) {
        const CubeId e = hostEntries_[h];
        for (CubeId at = 0; at < n; ++at) {
            ChainHop hop;
            if (at == e) {
                hop = attachHop(e);
            } else if (topo_ != ChainTopology::Ring) {
                hop = at > e ? ChainHop::Up : ChainHop::Down;
            } else {
                const std::uint32_t up_hops = ccwDistance(at, e);
                const std::uint32_t down_hops = cwDistance(at, e);
                hop = up_hops <= down_hops ? ccwHop(at) : cwHop(at);
            }
            towardEntry_[h * n + at] = hop;
        }
    }
}

CubeId
ChainRouteTable::hostEntry(HostId h) const
{
    if (h >= hostEntries_.size())
        panic("ChainRouteTable::hostEntry: host out of range");
    return hostEntries_[h];
}

HostId
ChainRouteTable::hostAt(CubeId entry_cube) const
{
    if (entry_cube >= entryHost_.size() ||
        entryHost_[entry_cube] == kHostNone)
        panic("ChainRouteTable: no host attached at cube " +
              std::to_string(entry_cube));
    return entryHost_[entry_cube];
}

ChainHop
ChainRouteTable::attachHop(CubeId entry_cube) const
{
    hostAt(entry_cube);  // must be a registered entry
    // The cube-0 host drives cube 0's own links (the classic chain
    // head); every other entry cube gets dedicated host links because
    // its own links are busy being the chain hop to the previous cube.
    return entry_cube == 0 ? ChainHop::Up : ChainHop::Host;
}

ChainHop
ChainRouteTable::next(CubeId at, CubeId dest) const
{
    if (at >= numCubes_ || dest >= numCubes_)
        panic("ChainRouteTable::next: cube out of range");
    if (topo_ == ChainTopology::Star && at != dest)
        panic("chain route table: star topologies do not forward "
              "between cubes");
    return next_[at * numCubes_ + dest];
}

ChainHop
ChainRouteTable::towardEntry(CubeId at, CubeId entry_cube) const
{
    if (at >= numCubes_)
        panic("ChainRouteTable::towardEntry: cube out of range");
    return towardEntry_[hostAt(entry_cube) * numCubes_ + at];
}

ChainHop
ChainRouteTable::towardHost(CubeId at) const
{
    if (at >= numCubes_)
        panic("ChainRouteTable::towardHost: cube out of range");
    return towardEntry_[at];  // host 0's slice starts at offset 0
}

CubeId
ChainRouteTable::neighbor(CubeId at, ChainHop h) const
{
    if (at >= numCubes_)
        panic("ChainRouteTable::neighbor: cube out of range");
    switch (h) {
      case ChainHop::Local:
        return at;
      case ChainHop::Up:
        // Cube 0's Up port faces the host, not another cube; an
        // unchecked `at - 1` would wrap to CubeId(-1) and address a
        // nonexistent cube.
        if (at == 0)
            panic("ChainRouteTable::neighbor: cube 0's Up neighbor is "
                  "the host, not a cube");
        return at - 1;
      case ChainHop::Down:
        if (at + 1 >= numCubes_)
            panic("ChainRouteTable::neighbor: cube " +
                  std::to_string(at) + " has no Down neighbor");
        return at + 1;
      case ChainHop::Wrap:
        return at == 0 ? numCubes_ - 1 : 0;
      case ChainHop::Host:
        panic("ChainRouteTable::neighbor: Host ports face a host "
              "controller, not a cube");
    }
    panic("ChainRouteTable: invalid hop");
}

std::uint32_t
ChainRouteTable::cwDistance(CubeId at, CubeId dest) const
{
    if (at >= numCubes_ || dest >= numCubes_)
        panic("ChainRouteTable::cwDistance: cube out of range");
    return (dest + numCubes_ - at) % numCubes_;
}

std::uint32_t
ChainRouteTable::ccwDistance(CubeId at, CubeId dest) const
{
    const std::uint32_t cw = cwDistance(at, dest);
    return cw == 0 ? 0 : numCubes_ - cw;
}

ChainHop
ChainRouteTable::cwHop(CubeId at) const
{
    if (at >= numCubes_)
        panic("ChainRouteTable::cwHop: cube out of range");
    return at == numCubes_ - 1 ? ChainHop::Wrap : ChainHop::Down;
}

ChainHop
ChainRouteTable::ccwHop(CubeId at) const
{
    if (at >= numCubes_)
        panic("ChainRouteTable::ccwHop: cube out of range");
    return at == 0 ? ChainHop::Wrap : ChainHop::Up;
}

std::uint32_t
ChainRouteTable::walk(CubeId start, CubeId dest, HostId h,
                      bool to_host) const
{
    // Star cubes are all host-attached: zero pass-through forwards in
    // either direction.
    if (topo_ == ChainTopology::Star)
        return 0;
    // Follow the static tables, counting pass-through forwards.  The
    // tables are loop-free by construction; the bound is a tripwire.
    const CubeId entry = hostEntry(h);
    std::uint32_t hops = 0;
    CubeId at = start;
    while (hops <= numCubes_) {
        if (to_host) {
            if (at == entry)
                return hops;  // the entry cube delivers to the host
            at = neighbor(at, towardEntry_[h * numCubes_ + at]);
        } else {
            const ChainHop hop = next_[at * numCubes_ + dest];
            if (hop == ChainHop::Local)
                return hops;
            at = neighbor(at, hop);
        }
        ++hops;
    }
    panic("ChainRouteTable: routing loop detected");
}

std::uint32_t
ChainRouteTable::requestHops(CubeId dest, HostId h) const
{
    if (dest >= numCubes_)
        panic("ChainRouteTable::requestHops: cube out of range");
    // Requests enter the network at the host's entry cube.
    return walk(hostEntry(h), dest, h, false);
}

std::uint32_t
ChainRouteTable::responseHops(CubeId dest, HostId h) const
{
    if (dest >= numCubes_)
        panic("ChainRouteTable::responseHops: cube out of range");
    return walk(dest, hostEntry(h), h, true);
}

std::uint32_t
ChainRouteTable::bisectionLinkCount() const
{
    if (numCubes_ == 1 || topo_ == ChainTopology::Star)
        return 1;  // host attachment is the only cut
    return topo_ == ChainTopology::Ring ? 2 : 1;
}

}  // namespace hmcsim
