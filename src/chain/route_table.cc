#include "chain/route_table.h"

#include "common/log.h"

namespace hmcsim {

std::string
toString(ChainHop h)
{
    switch (h) {
      case ChainHop::Local: return "local";
      case ChainHop::Up: return "up";
      case ChainHop::Down: return "down";
      case ChainHop::Wrap: return "wrap";
    }
    return "?";
}

ChainRouteTable::ChainRouteTable(ChainTopology topo, std::uint32_t num_cubes)
    : topo_(topo), numCubes_(num_cubes)
{
    if (num_cubes == 0)
        fatal("chain route table: need at least one cube");
    const std::uint32_t n = numCubes_;
    next_.resize(static_cast<std::size_t>(n) * n, ChainHop::Local);
    towardHost_.resize(n, ChainHop::Up);

    for (CubeId at = 0; at < n; ++at) {
        for (CubeId dest = 0; dest < n; ++dest) {
            if (at == dest) {
                next_[at * n + dest] = ChainHop::Local;
                continue;
            }
            switch (topo_) {
              case ChainTopology::Star:
                // Every cube is host-attached; a packet for another
                // cube should never be inside this one (next() panics
                // if queried).
                break;
              case ChainTopology::Daisy:
                next_[at * n + dest] =
                    dest > at ? ChainHop::Down : ChainHop::Up;
                break;
              case ChainTopology::Ring: {
                // Shortest direction, ties clockwise (increasing ids).
                const std::uint32_t cw = (dest + n - at) % n;
                const std::uint32_t ccw = n - cw;
                if (cw <= ccw)
                    next_[at * n + dest] =
                        at == n - 1 ? ChainHop::Wrap : ChainHop::Down;
                else
                    next_[at * n + dest] =
                        at == 0 ? ChainHop::Wrap : ChainHop::Up;
                break;
              }
            }
        }
    }

    // Responses head for the host behind cube 0.
    for (CubeId at = 0; at < n; ++at) {
        if (at == 0 || topo_ != ChainTopology::Ring) {
            towardHost_[at] = ChainHop::Up;
            continue;
        }
        const std::uint32_t up_hops = at;          // counter-clockwise
        const std::uint32_t down_hops = n - at;    // via the wrap link
        if (up_hops <= down_hops)
            towardHost_[at] = ChainHop::Up;
        else
            towardHost_[at] = at == n - 1 ? ChainHop::Wrap : ChainHop::Down;
    }
}

ChainHop
ChainRouteTable::next(CubeId at, CubeId dest) const
{
    if (at >= numCubes_ || dest >= numCubes_)
        panic("ChainRouteTable::next: cube out of range");
    if (topo_ == ChainTopology::Star && at != dest)
        panic("chain route table: star topologies do not forward "
              "between cubes");
    return next_[at * numCubes_ + dest];
}

ChainHop
ChainRouteTable::towardHost(CubeId at) const
{
    if (at >= numCubes_)
        panic("ChainRouteTable::towardHost: cube out of range");
    return towardHost_[at];
}

CubeId
ChainRouteTable::neighbor(CubeId at, ChainHop h) const
{
    if (at >= numCubes_)
        panic("ChainRouteTable::neighbor: cube out of range");
    switch (h) {
      case ChainHop::Local:
        return at;
      case ChainHop::Up:
        // Cube 0's Up port faces the host, not another cube; an
        // unchecked `at - 1` would wrap to CubeId(-1) and address a
        // nonexistent cube.
        if (at == 0)
            panic("ChainRouteTable::neighbor: cube 0's Up neighbor is "
                  "the host, not a cube");
        return at - 1;
      case ChainHop::Down:
        if (at + 1 >= numCubes_)
            panic("ChainRouteTable::neighbor: cube " +
                  std::to_string(at) + " has no Down neighbor");
        return at + 1;
      case ChainHop::Wrap:
        return at == 0 ? numCubes_ - 1 : 0;
    }
    panic("ChainRouteTable: invalid hop");
}

std::uint32_t
ChainRouteTable::cwDistance(CubeId at, CubeId dest) const
{
    if (at >= numCubes_ || dest >= numCubes_)
        panic("ChainRouteTable::cwDistance: cube out of range");
    return (dest + numCubes_ - at) % numCubes_;
}

std::uint32_t
ChainRouteTable::ccwDistance(CubeId at, CubeId dest) const
{
    const std::uint32_t cw = cwDistance(at, dest);
    return cw == 0 ? 0 : numCubes_ - cw;
}

ChainHop
ChainRouteTable::cwHop(CubeId at) const
{
    if (at >= numCubes_)
        panic("ChainRouteTable::cwHop: cube out of range");
    return at == numCubes_ - 1 ? ChainHop::Wrap : ChainHop::Down;
}

ChainHop
ChainRouteTable::ccwHop(CubeId at) const
{
    if (at >= numCubes_)
        panic("ChainRouteTable::ccwHop: cube out of range");
    return at == 0 ? ChainHop::Wrap : ChainHop::Up;
}

std::uint32_t
ChainRouteTable::walk(CubeId start, CubeId dest, bool to_host) const
{
    // Star cubes are all host-attached: zero pass-through forwards in
    // either direction.
    if (topo_ == ChainTopology::Star)
        return 0;
    // Follow the static tables, counting pass-through forwards.  The
    // tables are loop-free by construction; the bound is a tripwire.
    std::uint32_t hops = 0;
    CubeId at = start;
    while (hops <= numCubes_) {
        if (to_host) {
            if (at == 0)
                return hops;  // cube 0 delivers straight to the host
            at = neighbor(at, towardHost_[at]);
        } else {
            const ChainHop h = next_[at * numCubes_ + dest];
            if (h == ChainHop::Local)
                return hops;
            at = neighbor(at, h);
        }
        ++hops;
    }
    panic("ChainRouteTable: routing loop detected");
}

std::uint32_t
ChainRouteTable::requestHops(CubeId dest) const
{
    if (dest >= numCubes_)
        panic("ChainRouteTable::requestHops: cube out of range");
    // Requests enter the network at cube 0.
    return walk(0, dest, false);
}

std::uint32_t
ChainRouteTable::responseHops(CubeId dest) const
{
    if (dest >= numCubes_)
        panic("ChainRouteTable::responseHops: cube out of range");
    return walk(dest, 0, true);
}

std::uint32_t
ChainRouteTable::bisectionLinkCount() const
{
    if (numCubes_ == 1 || topo_ == ChainTopology::Star)
        return 1;  // host attachment is the only cut
    return topo_ == ChainTopology::Ring ? 2 : 1;
}

}  // namespace hmcsim
