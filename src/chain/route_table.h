/**
 * @file
 * Static per-cube routing for multi-cube chains (the HMC CUB field).
 *
 * Every cube's pass-through switch owns up to four port classes:
 *
 *   Up    this cube's own SerDes links, toward the host (or the
 *         previous cube in the chain)
 *   Down  the next cube's SerDes links, away from the host
 *   Wrap  the ring-closing links between cube N-1 and cube 0
 *   Host  dedicated host-attachment links at a non-zero entry cube
 *         (multi-host fabrics); the primary host behind cube 0 keeps
 *         using the Up links, exactly like the single-host chain
 *
 * The table answers, for any (current cube, destination cube) pair,
 * which port class the packet leaves on -- or Local when it has
 * arrived.  Routing is static and deterministic: daisy chains only
 * ever route Down (requests) / Up (responses); rings take the
 * shortest direction with ties broken clockwise (Down); stars never
 * forward at all (every cube is host-attached).
 *
 * With multiple host controllers (host.num_hosts > 1) the table also
 * knows each host's entry cube.  Responses no longer head for "the
 * host behind cube 0" but for the entry cube of the host that issued
 * the request (towardEntry); at the entry cube they leave on that
 * host's attachment port (attachHop).  A single host at entry cube 0
 * reproduces the legacy towardHost table bit for bit.
 */

#ifndef HMCSIM_CHAIN_ROUTE_TABLE_H_
#define HMCSIM_CHAIN_ROUTE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "hmc/hmc_config.h"

namespace hmcsim {

/** Output port class of one routing step. */
enum class ChainHop : unsigned {
    /** The packet is at its destination cube. */
    Local = 0,
    /** Out this cube's own links toward host / previous cube. */
    Up,
    /** Out the next cube's links, away from the host. */
    Down,
    /** Out the ring-closing link (cube N-1 <-> cube 0). */
    Wrap,
    /** Out a dedicated host-attachment link (multi-host entry cube). */
    Host,
};

std::string toString(ChainHop h);

class ChainRouteTable
{
  public:
    /**
     * @param host_entries entry cube of each host controller, indexed
     *        by HostId; empty means the classic single host at cube 0.
     *        Entries must be distinct; more than one host requires a
     *        daisy or ring topology (stars cannot forward responses
     *        between cubes).
     */
    ChainRouteTable(ChainTopology topo, std::uint32_t num_cubes,
                    std::vector<CubeId> host_entries = {});

    ChainTopology topology() const { return topo_; }
    std::uint32_t numCubes() const { return numCubes_; }

    std::uint32_t
    numHosts() const
    {
        return static_cast<std::uint32_t>(hostEntries_.size());
    }

    /** Entry cube of host @p h. */
    CubeId hostEntry(HostId h) const;

    /** Port class host @p entry_cube's attachment uses: Up for the
     *  cube-0 primary host, Host for a dedicated-link host.  @p
     *  entry_cube must be a registered entry. */
    ChainHop attachHop(CubeId entry_cube) const;

    /** Port a request for @p dest leaves cube @p at on. */
    ChainHop next(CubeId at, CubeId dest) const;

    /** Port a response leaves cube @p at on, heading for the host
     *  attached at @p entry_cube.  At the entry cube itself this is
     *  the attachment port (attachHop). */
    ChainHop towardEntry(CubeId at, CubeId entry_cube) const;

    /** Legacy alias: towardEntry for host 0's entry cube. */
    ChainHop towardHost(CubeId at) const;

    /** Pass-through forwards a request pays from host entry to @p dest. */
    std::uint32_t requestHops(CubeId dest, HostId h = 0) const;

    /** Pass-through forwards the matching response pays back. */
    std::uint32_t responseHops(CubeId dest, HostId h = 0) const;

    /**
     * Static bisection bandwidth of the cube-to-cube fabric in units
     * of one link's one-direction bandwidth (multiply by numLinks x
     * link GB/s).  Star and one-cube networks have no cube-to-cube cut
     * and report the host attachment width instead.
     */
    std::uint32_t bisectionLinkCount() const;

    /**
     * Cube on the far side of hop @p h from cube @p at.  Panics for
     * (0, Up): cube 0's Up port faces the host, which has no cube id.
     * Panics for Host hops: the far side is a host controller.
     */
    CubeId neighbor(CubeId at, ChainHop h) const;

    /** Hops from @p at to @p dest going clockwise (increasing ids). */
    std::uint32_t cwDistance(CubeId at, CubeId dest) const;

    /** Hops from @p at to @p dest counter-clockwise (decreasing ids). */
    std::uint32_t ccwDistance(CubeId at, CubeId dest) const;

    /** Port class one clockwise step out of @p at uses (ring wiring). */
    ChainHop cwHop(CubeId at) const;

    /** Port class one counter-clockwise step out of @p at uses. */
    ChainHop ccwHop(CubeId at) const;

  private:
    ChainTopology topo_;
    std::uint32_t numCubes_;
    /** Entry cube per host; {0} for the classic single host. */
    std::vector<CubeId> hostEntries_;
    /** Reverse map, sized numCubes: host attached at each cube, or
     *  kHostNone.  Keeps towardEntry() O(1) on the per-hop path. */
    std::vector<HostId> entryHost_;
    /** next_[at * numCubes_ + dest] */
    std::vector<ChainHop> next_;
    /** towardEntry_[h * numCubes_ + at] */
    std::vector<ChainHop> towardEntry_;

    /** Index of the host attached at @p entry_cube; panics when no
     *  host is registered there. */
    HostId hostAt(CubeId entry_cube) const;

    std::uint32_t walk(CubeId start, CubeId dest, HostId h,
                       bool to_host) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_CHAIN_ROUTE_TABLE_H_
