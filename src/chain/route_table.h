/**
 * @file
 * Static per-cube routing for multi-cube chains (the HMC CUB field).
 *
 * Every cube's pass-through switch owns up to three port classes:
 *
 *   Up    this cube's own SerDes links, toward the host (or the
 *         previous cube in the chain)
 *   Down  the next cube's SerDes links, away from the host
 *   Wrap  the ring-closing links between cube N-1 and cube 0
 *
 * The table answers, for any (current cube, destination cube) pair,
 * which port class the packet leaves on -- or Local when it has
 * arrived.  Routing is static and deterministic: daisy chains only
 * ever route Down (requests) / Up (responses); rings take the
 * shortest direction with ties broken clockwise (Down); stars never
 * forward at all (every cube is host-attached).
 */

#ifndef HMCSIM_CHAIN_ROUTE_TABLE_H_
#define HMCSIM_CHAIN_ROUTE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "hmc/hmc_config.h"

namespace hmcsim {

/** Output port class of one routing step. */
enum class ChainHop : unsigned {
    /** The packet is at its destination cube. */
    Local = 0,
    /** Out this cube's own links toward host / previous cube. */
    Up,
    /** Out the next cube's links, away from the host. */
    Down,
    /** Out the ring-closing link (cube N-1 <-> cube 0). */
    Wrap,
};

std::string toString(ChainHop h);

class ChainRouteTable
{
  public:
    ChainRouteTable(ChainTopology topo, std::uint32_t num_cubes);

    ChainTopology topology() const { return topo_; }
    std::uint32_t numCubes() const { return numCubes_; }

    /** Port a request for @p dest leaves cube @p at on. */
    ChainHop next(CubeId at, CubeId dest) const;

    /** Port a response leaves cube @p at on (destination: host). */
    ChainHop towardHost(CubeId at) const;

    /** Pass-through forwards a request pays from host entry to @p dest. */
    std::uint32_t requestHops(CubeId dest) const;

    /** Pass-through forwards the matching response pays back. */
    std::uint32_t responseHops(CubeId dest) const;

    /**
     * Static bisection bandwidth of the cube-to-cube fabric in units
     * of one link's one-direction bandwidth (multiply by numLinks x
     * link GB/s).  Star and one-cube networks have no cube-to-cube cut
     * and report the host attachment width instead.
     */
    std::uint32_t bisectionLinkCount() const;

    /**
     * Cube on the far side of hop @p h from cube @p at.  Panics for
     * (0, Up): cube 0's Up port faces the host, which has no cube id.
     */
    CubeId neighbor(CubeId at, ChainHop h) const;

    /** Hops from @p at to @p dest going clockwise (increasing ids). */
    std::uint32_t cwDistance(CubeId at, CubeId dest) const;

    /** Hops from @p at to @p dest counter-clockwise (decreasing ids). */
    std::uint32_t ccwDistance(CubeId at, CubeId dest) const;

    /** Port class one clockwise step out of @p at uses (ring wiring). */
    ChainHop cwHop(CubeId at) const;

    /** Port class one counter-clockwise step out of @p at uses. */
    ChainHop ccwHop(CubeId at) const;

  private:
    ChainTopology topo_;
    std::uint32_t numCubes_;
    /** next_[at * numCubes_ + dest] */
    std::vector<ChainHop> next_;
    std::vector<ChainHop> towardHost_;

    std::uint32_t walk(CubeId start, CubeId dest, bool to_host) const;
};

}  // namespace hmcsim

#endif  // HMCSIM_CHAIN_ROUTE_TABLE_H_
