/**
 * @file
 * CubeNetwork: assembles N HmcDevices into a chained network.
 *
 * Link ownership: each cube's own SerDes links connect it to the host
 * (cube 0) or to the previous cube in the chain -- the cable's
 * HostToCube RX sits at the owning cube, its CubeToHost RX at the
 * upstream party.  Ring topologies add dedicated wrap links between
 * cube N-1 and cube 0.  Star topologies attach every cube's links
 * directly to the host (link l serves cube l % N) and need no
 * pass-through at all.
 *
 * The network wires each cube's ChainSwitch to the route table,
 * combines token-free callbacks across the producers sharing a link
 * direction (NoC ejection + pass-through pump), and rewires ring
 * cubes whose response route is not Up.
 */

#ifndef HMCSIM_CHAIN_CUBE_NETWORK_H_
#define HMCSIM_CHAIN_CUBE_NETWORK_H_

#include <memory>
#include <vector>

#include "chain/chain_switch.h"
#include "chain/route_table.h"
#include "chain/routing_policy.h"
#include "hmc/hmc_device.h"

namespace hmcsim {

class CubeNetwork : public Component
{
  public:
    CubeNetwork(Kernel &kernel, Component *parent, std::string name,
                const HmcConfig &cfg);

    std::uint32_t numCubes() const { return cfg_.chain.numCubes; }
    HmcDevice &cube(CubeId c);
    const ChainRouteTable &routes() const { return routes_; }
    const ChainRoutingPolicy &routingPolicy() const { return *policy_; }
    ChainRoutingMode routingMode() const { return mode_; }
    const HmcConfig &config() const { return cfg_; }

    /** Pass-through switch of cube @p c; null for star topologies. */
    ChainSwitch *switchAt(CubeId c);

    // ----- host attachment -----

    std::uint32_t numHostLinks() const { return cfg_.numLinks; }

    /** Link the host controller drives for lane @p l. */
    SerdesLink &hostLink(LinkId l);

    /** Cube reachable through host link @p l; kCubeAll when the link
     *  leads into a chain that reaches every cube. */
    CubeId hostLinkCube(LinkId l) const;

    /**
     * Static bisection bandwidth of the cube-to-cube fabric (one
     * direction), GB/s.
     */
    double bisectionBandwidthGBs() const;

    /** Sum of requests served across all cubes. */
    std::uint64_t totalRequestsServed() const;

  private:
    HmcConfig cfg_;
    ChainRouteTable routes_;
    ChainRoutingMode mode_;
    std::unique_ptr<ChainRoutingPolicy> policy_;
    std::vector<std::unique_ptr<HmcDevice>> cubes_;
    std::vector<std::unique_ptr<SerdesLink>> wrapLinks_;
    std::vector<std::unique_ptr<ChainSwitch>> switches_;

    void wireChain();
    void combineTokenCallbacks();
    void applyWrapThrottle();
};

}  // namespace hmcsim

#endif  // HMCSIM_CHAIN_CUBE_NETWORK_H_
