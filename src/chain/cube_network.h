/**
 * @file
 * CubeNetwork: assembles N HmcDevices into a chained network.
 *
 * Link ownership: each cube's own SerDes links connect it to the host
 * (cube 0) or to the previous cube in the chain -- the cable's
 * HostToCube RX sits at the owning cube, its CubeToHost RX at the
 * upstream party.  Ring topologies add dedicated wrap links between
 * cube N-1 and cube 0.  Star topologies attach every cube's links
 * directly to the host (link l serves cube l % N) and need no
 * pass-through at all.
 *
 * Multi-host fabrics (host.num_hosts > 1) attach additional host
 * controllers at configurable entry cubes.  The host entering at cube
 * 0 keeps driving cube 0's own links; every other host gets dedicated
 * host links owned by the network and wired into its entry cube's
 * ChainSwitch as the Host port class.  Locally generated responses
 * are then routed per packet toward the issuing host's entry cube
 * (ChainSwitch::ejectRoutedFromNoc) instead of the single static
 * toward-host port.
 *
 * The network wires each cube's ChainSwitch to the route table,
 * combines token-free callbacks across the producers sharing a link
 * direction (NoC ejection + pass-through pump), and rewires ring
 * cubes whose response route is not Up.
 */

#ifndef HMCSIM_CHAIN_CUBE_NETWORK_H_
#define HMCSIM_CHAIN_CUBE_NETWORK_H_

#include <memory>
#include <vector>

#include "chain/chain_switch.h"
#include "chain/route_table.h"
#include "chain/routing_policy.h"
#include "hmc/hmc_device.h"

namespace hmcsim {

class CubeNetwork : public Component
{
  public:
    /**
     * @param host_entries entry cube per host controller; empty means
     *        the classic single host at cube 0
     */
    CubeNetwork(Kernel &kernel, Component *parent, std::string name,
                const HmcConfig &cfg,
                std::vector<CubeId> host_entries = {});

    std::uint32_t numCubes() const { return cfg_.chain.numCubes; }
    HmcDevice &cube(CubeId c);
    const ChainRouteTable &routes() const { return routes_; }
    const ChainRoutingPolicy &routingPolicy() const { return *policy_; }
    ChainRoutingMode routingMode() const { return mode_; }
    const HmcConfig &config() const { return cfg_; }

    /** Pass-through switch of cube @p c; null for star topologies. */
    ChainSwitch *switchAt(CubeId c);

    /**
     * Partitioned-parallel wiring: declare, per link direction, which
     * partition drives the transmit end and which the receive end, so
     * the SerDes boundary routes deliveries and token refunds through
     * the destination partition's mailbox.  Direction state belongs to
     * the end that executes it: a cube-owned cable's HostToCube end is
     * driven upstream (host or previous cube's switch), its CubeToHost
     * end by the owning cube; wrap links run cube 0 <-> cube N-1; star
     * topologies put every host-end event in the host's partition
     * (cube 0).  Dedicated host links stay unassigned -- the host
     * controller executes inside its entry cube's partition, so both
     * ends are already partition-local.  No-op when sim.parallel=off.
     */
    void assignPartitions();

    // ----- host attachment -----

    std::uint32_t numHosts() const { return routes_.numHosts(); }

    /** Per-host link fan-out (every host drives hmc.num_links). */
    std::uint32_t numHostLinks() const { return cfg_.numLinks; }

    /** Link host @p h's controller drives for lane @p l. */
    SerdesLink &hostLink(LinkId l, HostId h = 0);

    /** Cube reachable through host @p h's link @p l; kCubeAll when
     *  the link leads into a chain that reaches every cube. */
    CubeId hostLinkCube(LinkId l, HostId h = 0) const;

    /**
     * Static bisection bandwidth of the cube-to-cube fabric (one
     * direction), GB/s.
     */
    double bisectionBandwidthGBs() const;

    /** Sum of requests served across all cubes. */
    std::uint64_t totalRequestsServed() const;

    /** Pass-through forwarded flits summed over every switch (total
     *  fabric transit volume; multi-hop packets count once per hop). */
    std::uint64_t totalForwardedFlits() const;

    /**
     * Flits that crossed the canonical bisection cut in @p dir over
     * the stats window.  The cut splits the chain between cubes
     * N/2-1 and N/2: cube N/2's own cables for daisy chains, plus the
     * wrap links for rings.  0 for star/single-cube networks (no
     * cube-to-cube cut).
     */
    std::uint64_t bisectionFlitsSent(LinkDir dir) const;

  private:
    HmcConfig cfg_;
    ChainRouteTable routes_;
    ChainRoutingMode mode_;
    std::unique_ptr<ChainRoutingPolicy> policy_;
    std::vector<std::unique_ptr<HmcDevice>> cubes_;
    std::vector<std::unique_ptr<SerdesLink>> wrapLinks_;
    /** hostLinks_[h] is empty for the cube-0 host (it drives cube 0's
     *  own links); dedicated links otherwise. */
    std::vector<std::vector<std::unique_ptr<SerdesLink>>> hostLinks_;
    std::vector<std::unique_ptr<ChainSwitch>> switches_;

    void wireChain();
    void wireHostLinks();
    void combineTokenCallbacks();
    void installThrottleAppliers();
    void applyAuxLinkThrottle();
};

}  // namespace hmcsim

#endif  // HMCSIM_CHAIN_CUBE_NETWORK_H_
