/**
 * @file
 * Trace replay: generate (or load) memory traces for three workload
 * shapes the paper's introduction motivates -- streaming, random
 * (GUPS-like), and pointer chasing -- replay them through stream
 * ports, and compare their latency/bandwidth behaviour.
 *
 * Run: ./trace_replay [trace-file]
 *   With a file argument, replays that trace on port 0 instead of the
 *   synthetic workloads (text or binary format; see host/trace.h).
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "host/system.h"

using namespace hmcsim;

namespace {

void
report(const char *name, System &sys, PortId port)
{
    const Monitor &m = sys.port(port).monitor();
    std::printf("  %-14s reads %8llu  avg %7.0f ns  max %7.0f ns\n",
                name,
                static_cast<unsigned long long>(m.reads()),
                m.readLatencyNs().mean(), m.readLatencyNs().max());
}

int
replayFile(const std::string &path)
{
    SystemConfig cfg;
    System sys(cfg);
    StreamPortSpec sp;
    sp.trace = loadTraceFile(path);
    sp.loop = false;
    sys.configureStreamPort(0, sp);
    std::printf("replaying %zu records from %s\n", sp.trace.size(),
                path.c_str());
    if (!sys.runUntilIdle(100 * kMillisecond)) {
        std::fprintf(stderr, "trace did not finish within 100 ms\n");
        return 1;
    }
    report("trace", sys, 0);
    std::printf("  finished at t=%.1f us\n", ticksToUs(sys.now()));
    return 0;
}

}  // namespace

int
main(int argc, char **argv)
try {
    if (argc > 1)
        return replayFile(argv[1]);

    SystemConfig cfg;
    System sys(cfg);
    Rng rng(7);

    // Streaming: sequential 128 B lines -- rides the vault-then-bank
    // interleave perfectly.
    StreamPortSpec stream;
    stream.trace = makeStreamTrace(0, 8192, 128, 128);
    stream.loop = true;
    sys.configureStreamPort(0, stream);

    // Random: uniform 64 B over the whole cube.
    StreamPortSpec random;
    random.trace = makeRandomTrace(
        rng, sys.addressMap().pattern(16, 16), cfg.hmc.totalCapacityBytes(),
        8192, 64);
    random.loop = true;
    sys.configureStreamPort(1, random);

    // Pointer chase: dependent-ish hops inside a 16 MB pool with a
    // shallow window, the latency-bound extreme.
    StreamPortSpec chase;
    chase.trace = makePointerChaseTrace(rng, 0, 16ull << 20, 8192, 16);
    chase.loop = true;
    chase.window = 1;  // one dependent load at a time
    sys.configureStreamPort(2, chase);

    sys.run(20 * kMicrosecond);
    const ExperimentResult r = sys.measure(60 * kMicrosecond);

    std::printf("three workload shapes, 60 us steady state:\n");
    report("streaming", sys, 0);
    report("random", sys, 1);
    report("pointer chase", sys, 2);
    std::printf("  total bandwidth %.2f GB/s\n", r.bandwidthGBs);

    std::printf("\nper-workload takeaway: the chase pays the full "
                "round trip per hop;\nstreaming exploits vault-level "
                "parallelism via the Fig. 3 interleave.\n");
    return 0;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
