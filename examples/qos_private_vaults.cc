/**
 * @file
 * QoS-by-partitioning demo (the paper's Section IV-C proposal): a
 * latency-sensitive stream shares a hot quadrant with heavy background
 * traffic, then gets a private vault carved out of it.  Prints the
 * high-priority stream's latency under both layouts.
 *
 * The host deserializer is widened beyond the AC-510 default so the
 * cube-side contention (what vault partitioning can fix) is isolated
 * from the host-side response bottleneck (what it cannot).
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "host/system.h"

using namespace hmcsim;

namespace {

struct Outcome {
    double hiAvgNs;
    double hiMaxNs;
    double bgGBs;
};

/**
 * Port 0 is the high-priority stream; ports 1-8 are heavy GUPS
 * background traffic on the hot quadrant (vaults 12-15).
 * @param partitioned if true, the high-priority stream owns vault 15
 *        exclusively and background is confined to vaults 12-14... as
 *        close as power-of-two masks allow: background keeps vaults
 *        12-13 and the stream owns 14-15.
 */
Outcome
run(bool partitioned)
{
    SystemConfig cfg;
    cfg.host.deserializerPacketsPerCycle = 4;
    cfg.host.deserializerPacketBudgetCap = 8;
    cfg.host.deserializerFlitsPerCycle = 16;
    cfg.host.requestsPerCyclePerLink = 4;
    cfg.host.tagsPerPort = 96;
    System sys(cfg);
    Rng rng(2024);

    const AddressPattern hi = partitioned
        ? sys.addressMap().pattern(2, 16, 14)   // private vaults 14-15
        : sys.addressMap().pattern(4, 16, 12);  // shared hot quadrant

    StreamPortSpec hp;
    hp.trace = makeRandomTrace(rng, hi, cfg.hmc.totalCapacityBytes(), 4096, 64);
    hp.loop = true;
    hp.window = 8;  // latency-sensitive: shallow queue
    sys.configureStreamPort(0, hp);

    const AddressPattern bg = partitioned
        ? sys.addressMap().pattern(2, 16, 12)   // vaults 12-13
        : sys.addressMap().pattern(4, 16, 12);  // whole hot quadrant
    for (PortId p = 1; p <= 8; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = bg;
        gp.gen.requestBytes = 16;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = 100 + p;
        sys.configureGupsPort(p, gp);
    }

    sys.run(20 * kMicrosecond);
    const ExperimentResult r = sys.measure(60 * kMicrosecond);

    Outcome o{};
    for (const PortStats &ps : r.ports) {
        if (ps.port == 0) {
            o.hiAvgNs = ps.avgReadNs;
            o.hiMaxNs = ps.maxReadNs;
        } else {
            o.bgGBs += ps.bandwidthGBs;
        }
    }
    return o;
}

}  // namespace

int
main()
try {
    std::printf("QoS via vault partitioning (paper Section IV-C)\n");
    std::printf("8 GUPS ports hammer a hot quadrant; one shallow "
                "stream needs low latency\n\n");
    const Outcome shared = run(false);
    const Outcome partitioned = run(true);

    std::printf("%-22s %12s %12s %12s\n", "layout", "hi avg (ns)",
                "hi max (ns)", "bg GB/s");
    std::printf("%-22s %12.0f %12.0f %12.2f\n", "fully shared",
                shared.hiAvgNs, shared.hiMaxNs, shared.bgGBs);
    std::printf("%-22s %12.0f %12.0f %12.2f\n", "private vaults",
                partitioned.hiAvgNs, partitioned.hiMaxNs,
                partitioned.bgGBs);

    std::printf("\nhigh-priority avg improved %.2fx, tail %.2fx, at a "
                "%.0f%% background cost\n",
                shared.hiAvgNs / partitioned.hiAvgNs,
                shared.hiMaxNs / partitioned.hiMaxNs,
                (1.0 - partitioned.bgGBs / shared.bgGBs) * 100.0);
    return 0;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
