/**
 * @file
 * Quickstart: build the paper's AC-510 + HMC 1.1 system with default
 * configuration, point one GUPS port at the whole cube, and print the
 * measured bandwidth and latency.
 *
 * Run: ./quickstart [key=value ...]
 * e.g. ./quickstart hmc.topology=quadrant_ring host.tags_per_port=16
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;

int
main(int argc, char **argv)
try {
    // Optional key=value overrides from the command line.
    Config overrides;
    SystemConfig{}.toConfig(overrides);  // start from defaults
    std::vector<std::string> args(argv + 1, argv + argc);
    overrides.applyOverrides(args);
    const SystemConfig cfg = SystemConfig::fromConfig(overrides);

    System sys(cfg);

    std::printf("hmc-noc-sim quickstart\n");
    std::printf("  cube: %u vaults x %u banks, %.0f GB/s peak (Eq. 1)\n",
                cfg.hmc.numVaults, cfg.hmc.numBanksPerVault,
                cfg.hmc.peakBandwidthGBs());

    // One GUPS port, random 64 B reads over every vault and bank.
    GupsPortSpec gp;
    gp.gen.pattern = sys.addressMap().pattern(cfg.hmc.numVaults,
                                              cfg.hmc.numBanksPerVault);
    gp.gen.requestBytes = 64;
    gp.gen.capacity = cfg.hmc.totalCapacityBytes();
    sys.configureGupsPort(0, gp);

    sys.run(20 * kMicrosecond);                       // warm up
    ExperimentResult r = sys.measure(50 * kMicrosecond);

    std::printf("\none port, 64 B random reads, whole cube:\n");
    std::printf("  reads          %llu\n",
                static_cast<unsigned long long>(r.totalReads));
    std::printf("  bandwidth      %.2f GB/s (request+response bytes)\n",
                r.bandwidthGBs);
    std::printf("  read latency   avg %.0f ns  min %.0f  max %.0f\n",
                r.avgReadLatencyNs, r.minReadLatencyNs,
                r.maxReadLatencyNs);

    // Scale up to all nine ports, like the paper's GUPS runs.
    for (PortId p = 1; p < cfg.host.numPorts; ++p) {
        GupsPortSpec pp = gp;
        pp.gen.seed = gp.gen.seed + p;
        sys.configureGupsPort(p, pp);
    }
    sys.run(20 * kMicrosecond);
    r = sys.measure(50 * kMicrosecond);
    std::printf("\nnine ports (paper's high-contention GUPS):\n");
    std::printf("  bandwidth      %.2f GB/s\n", r.bandwidthGBs);
    std::printf("  read latency   avg %.0f ns\n", r.avgReadLatencyNs);
    return 0;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
