/**
 * @file
 * Thermal throttling scenario: a sustained 9-port GUPS load against a
 * cube configured with a low thermal limit and accelerated thermal
 * constants, printed as a per-window time series.  Watch the stack
 * heat up, the governor engage, and delivered bandwidth fall until
 * the temperature regulates inside the hysteresis band.
 *
 * Run: ./example_thermal_throttle [key=value ...]
 * e.g. ./example_thermal_throttle hmc.power_throttle_on_c=52
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;

int
main(int argc, char **argv)
try {
    Config overrides;
    SystemConfig{}.toConfig(overrides);
    // Scenario defaults: aggressive limit, fast thermals.  Command
    // line key=value pairs can override any of them.
    overrides.setDouble("hmc.power_layer_capacitance_j_per_k", 1e-5);
    overrides.setU64("hmc.power_step_ps", 1 * kMicrosecond);
    overrides.setBool("hmc.power_throttle_enabled", true);
    overrides.setDouble("hmc.power_throttle_on_c", 49.0);
    overrides.setDouble("hmc.power_throttle_off_c", 47.5);
    std::vector<std::string> args(argv + 1, argv + argc);
    overrides.applyOverrides(args);
    const SystemConfig cfg = SystemConfig::fromConfig(overrides);

    System sys(cfg);
    for (PortId p = 0; p < cfg.host.numPorts; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = sys.addressMap().pattern(
            cfg.hmc.numVaults, cfg.hmc.numBanksPerVault);
        gp.gen.requestBytes = 128;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = 7919 + p;
        sys.configureGupsPort(p, gp);
    }

    std::printf("thermal throttle scenario: 9-port GUPS, 128 B reads\n");
    std::printf("  limit: on above %.1f C, off below %.1f C, "
                "max slowdown %.1fx\n\n",
                cfg.hmc.power.throttle.onThresholdC,
                cfg.hmc.power.throttle.offThresholdC,
                cfg.hmc.power.throttle.maxSlowdown);
    std::printf("%8s %10s %12s %10s %10s %13s\n", "time_us", "temp_c",
                "power_w", "bw_gbs", "latency_ns", "throttle_pct");

    for (int w = 0; w < 12; ++w) {
        const ExperimentResult r = sys.measure(8 * kMicrosecond);
        std::printf("%8.1f %10.2f %12.2f %10.2f %10.0f %13.1f\n",
                    ticksToUs(sys.now()), r.maxTempC, r.avgPowerW,
                    r.bandwidthGBs, r.avgReadLatencyNs, r.throttlePct);
    }
    return 0;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
