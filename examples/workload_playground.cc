/**
 * @file
 * Workload playground: drive the pluggable workload subsystem purely
 * from config keys -- no C++ per scenario.  Every knob documented in
 * host/workload/workload_spec.h can be overridden on the command
 * line.
 *
 * Run: ./example_workload_playground [key=value ...]
 * e.g. ./example_workload_playground host.workload=zipf \
 *          host.workload.zipf_theta=0.9 host.workload_ports=4
 *      ./example_workload_playground host.workload.inject=open \
 *          host.workload.rate_per_ns=0.03 host.workload.burstiness=32
 *      ./example_workload_playground host.workload=mix \
 *          "host.workload.mix_phases=gups:20us,stride:10us,zipf:10us"
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;

int
main(int argc, char **argv)
try {
    Config overrides;
    SystemConfig{}.toConfig(overrides);
    // Playground defaults: three open-loop Zipf ports; override away.
    overrides.set("host.workload", "zipf");
    overrides.setU64("host.workload_ports", 3);
    overrides.set("host.workload.inject", "open");
    overrides.setDouble("host.workload.rate_per_ns", 0.02);
    std::vector<std::string> args(argv + 1, argv + argc);
    overrides.applyOverrides(args);
    const SystemConfig cfg = SystemConfig::fromConfig(overrides);

    System sys(cfg);  // ports come up configured and active

    std::printf("workload playground: %zu config-driven port(s)\n",
                cfg.host.portWorkloads.size());
    for (const PortWorkload &pw : cfg.host.portWorkloads) {
        std::printf("  port %u: %s (%s loop)\n", pw.port,
                    pw.spec.type.c_str(), pw.spec.inject.c_str());
    }

    sys.run(10 * kMicrosecond);
    const ExperimentResult r = sys.measure(30 * kMicrosecond);

    std::printf("\n30 us steady state:\n");
    std::printf("  bandwidth      %.2f GB/s\n", r.bandwidthGBs);
    std::printf("  read latency   avg %.0f ns  max %.0f ns\n",
                r.avgReadLatencyNs, r.maxReadLatencyNs);
    if (r.totalOfferedRequests > 0.0) {
        std::printf("  offered        %.4f req/ns\n", r.offeredPerNs());
        std::printf("  accepted       %.4f req/ns (%.1f%%)\n",
                    r.acceptedPerNs(),
                    100.0 * r.acceptedPerNs() / r.offeredPerNs());
    }
    for (const HostStats &hs : r.hosts) {
        if (r.hosts.size() > 1)
            std::printf("  host %u @ cube %u: %llu reads, avg %.0f ns\n",
                        hs.host, hs.entryCube,
                        static_cast<unsigned long long>(hs.reads),
                        hs.avgReadNs);
    }
    for (const PortStats &ps : r.ports) {
        if (r.hosts.size() > 1)
            std::printf("  host %u port %u: %llu reads, avg %.0f ns\n",
                        ps.host, ps.port,
                        static_cast<unsigned long long>(ps.reads),
                        ps.avgReadNs);
        else
            std::printf("  port %u: %llu reads, avg %.0f ns\n", ps.port,
                        static_cast<unsigned long long>(ps.reads),
                        ps.avgReadNs);
    }
    return 0;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
