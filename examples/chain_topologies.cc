/**
 * @file
 * Multi-cube chaining demo: the `hmc.num_cubes` / `hmc.chain_*` config
 * surface, CUB-field address decode, and the latency/capacity trade of
 * daisy chains, rings and stars.
 *
 * Run: ./example_chain_topologies [key=value ...]
 * e.g. ./example_chain_topologies hmc.num_cubes=8 \
 *          hmc.chain_topology=ring hmc.chain_interleave=cube_low
 */

#include <cstdio>
#include <exception>
#include <iostream>

#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;

namespace {

void
runOne(SystemConfig cfg)
{
    cfg.validate();
    System sys(cfg);
    const AddressMap &map = sys.addressMap();

    std::printf("\n== %u cube(s), %s topology, %s interleave ==\n",
                cfg.hmc.chain.numCubes, cfg.hmc.chain.topology.c_str(),
                cfg.hmc.chain.interleave.c_str());
    std::printf("  capacity %.0f GB total, CUB field: %u bit(s) at bit %u\n",
                static_cast<double>(cfg.hmc.totalCapacityBytes()) /
                    (1ull << 30),
                map.cubeBits(), map.cubeLow());
    if (CubeNetwork *chain = sys.chain()) {
        std::printf("  bisection %.1f GB/s; request hops per cube:",
                    chain->bisectionBandwidthGBs());
        for (CubeId c = 0; c < sys.numCubes(); ++c)
            std::printf(" %u", chain->routes().requestHops(c));
        std::printf("\n");
    }

    // All nine GUPS ports, random 64 B reads over every cube.
    for (PortId p = 0; p < cfg.host.numPorts; ++p) {
        GupsPortSpec gp;
        gp.gen.pattern = map.pattern(cfg.hmc.numVaults,
                                     cfg.hmc.numBanksPerVault);
        gp.gen.requestBytes = 64;
        gp.gen.capacity = cfg.hmc.totalCapacityBytes();
        gp.gen.seed = 17 + p;
        sys.configureGupsPort(p, gp);
    }
    sys.run(10 * kMicrosecond);
    const ExperimentResult r = sys.measure(25 * kMicrosecond);

    std::printf("  bandwidth %.2f GB/s, avg latency %.0f ns, "
                "avg chain hops %.2f\n",
                r.bandwidthGBs, r.avgReadLatencyNs, r.avgChainHops);
    for (const CubeStats &cs : r.cubes) {
        std::printf("    cube %u: served %llu (hops %u, peak "
                    "outstanding %u)\n",
                    cs.cube,
                    static_cast<unsigned long long>(cs.requestsServed),
                    cs.requestHops, cs.peakOutstanding);
    }
}

}  // namespace

int
main(int argc, char **argv)
try {
    if (argc > 1) {
        // Explicit key=value overrides: run exactly that system.
        Config overrides;
        SystemConfig{}.toConfig(overrides);
        std::vector<std::string> args(argv + 1, argv + argc);
        overrides.applyOverrides(args);
        runOne(SystemConfig::fromConfig(overrides));
        return 0;
    }

    SystemConfig cfg;
    runOne(cfg);  // classic single cube

    cfg.hmc.chain.numCubes = 4;
    cfg.hmc.chain.topology = "daisy";
    runOne(cfg);

    cfg.hmc.chain.topology = "ring";
    runOne(cfg);

    cfg.hmc.chain.topology = "star";
    cfg.hmc.numLinks = 4;  // one host link per cube
    runOne(cfg);

    cfg.hmc.chain.topology = "daisy";
    cfg.hmc.numLinks = 2;
    cfg.hmc.chain.interleave = "cube_low";
    runOne(cfg);
    return 0;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
