/**
 * @file
 * GUPS access-pattern sweep: reproduce the spirit of the paper's
 * Section IV-A interactively.  For every structural access pattern
 * (1 bank .. 16 vaults) and request size, print bandwidth and latency
 * as a CSV table -- the data behind Fig. 6.
 *
 * Run: ./gups_sweep [window_us]
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>

#include "common/csv.h"
#include "host/experiment.h"
#include "host/system.h"

using namespace hmcsim;

namespace {

struct Pattern {
    const char *name;
    std::uint32_t vaults;
    std::uint32_t banks;
};

constexpr Pattern kPatterns[] = {
    {"1 bank", 1, 1},    {"2 banks", 1, 2},  {"4 banks", 1, 4},
    {"8 banks", 1, 8},   {"1 vault", 1, 16}, {"2 vaults", 2, 16},
    {"4 vaults", 4, 16}, {"8 vaults", 8, 16}, {"16 vaults", 16, 16},
};

}  // namespace

int
main(int argc, char **argv)
try {
    Tick window = 30 * kMicrosecond;
    if (argc > 1)
        window = static_cast<Tick>(std::atof(argv[1]) * kMicrosecond);

    const SystemConfig cfg;
    CsvWriter csv(std::cout, {"pattern", "vaults", "banks",
                              "request_bytes", "bandwidth_gbs",
                              "avg_latency_ns", "max_latency_ns"});
    for (const Pattern &pat : kPatterns) {
        for (std::uint32_t bytes : {16u, 32u, 64u, 128u}) {
            GupsSpec spec;
            spec.requestBytes = bytes;
            spec.numVaults = pat.vaults;
            spec.numBanks = pat.banks;
            spec.warmup = window / 3;
            spec.window = window;
            const ExperimentResult r = runGups(cfg, spec);
            csv.row()
                .cell(pat.name)
                .cell(pat.vaults)
                .cell(pat.banks)
                .cell(bytes)
                .cell(r.bandwidthGBs, 2)
                .cell(r.avgReadLatencyNs, 0)
                .cell(r.maxReadLatencyNs, 0);
        }
    }
    csv.finish();
    return 0;
} catch (const std::exception &e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
}
